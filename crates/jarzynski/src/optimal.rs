//! Parameter selection: the decision procedure of §IV that concludes
//! "an optimal set of values are κ = 100 pN/Å and v = 12.5 Å/ns".
//!
//! There is no analytic relationship between (κ, v) and the combined
//! error (the paper stresses this), so selection is empirical over the
//! sweep grid:
//!
//! 1. score every cell by the combined error
//!    `√(σ_stat,norm² + σ_sys²)`,
//! 2. pick the κ whose *best* cell is lowest (κ trades the two error
//!    channels against each other),
//! 3. within that κ, walk v downward while the PMF keeps changing
//!    significantly; stop at the smallest v whose halving would make "an
//!    insignificant difference" (paper: v = 12.5 vs 25 at κ = 100).

use serde::{Deserialize, Serialize};

/// Measured errors for one (κ, v) sweep cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ParameterCell {
    /// Spring constant (pN/Å).
    pub kappa_pn_per_a: f64,
    /// Pulling velocity (Å/ns).
    pub v_a_per_ns: f64,
    /// Cost-normalized statistical error (kcal/mol).
    pub sigma_stat: f64,
    /// Systematic error vs the reference profile (kcal/mol).
    pub sigma_sys: f64,
    /// RMS difference between this cell's PMF and the next-slower v at the
    /// same κ (NaN for the slowest v).
    pub delta_vs_slower: f64,
    /// Whether the ensemble actually covered the full required reaction
    /// coordinate range (a too-soft spring lags its guide and never
    /// produces the PMF over the requested sub-trajectory — §IV-B's
    /// κ = 10 failure). Cells without coverage cannot be selected.
    pub covered: bool,
}

impl ParameterCell {
    /// Combined error score.
    pub fn score(&self) -> f64 {
        (self.sigma_stat * self.sigma_stat + self.sigma_sys * self.sigma_sys).sqrt()
    }
}

/// The selected optimum plus the reasoning trail.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Selection {
    /// Chosen spring constant (pN/Å).
    pub kappa_pn_per_a: f64,
    /// Chosen velocity (Å/ns).
    pub v_a_per_ns: f64,
    /// Score of the chosen cell.
    pub score: f64,
    /// True when halving v from the chosen value makes an insignificant
    /// difference (the paper's v-convergence evidence).
    pub converged: bool,
    /// Per-κ best scores, for reporting.
    pub kappa_ranking: Vec<(f64, f64)>,
}

/// Select the optimal (κ, v) from sweep-cell measurements.
///
/// `significance` is the threshold (kcal/mol) below which two PMFs are
/// considered indistinguishable (the paper's "insignificant difference in
/// PMF values between v = 12.5 and 25").
///
/// # Panics
/// Panics on an empty table.
pub fn select_optimal(cells: &[ParameterCell], significance: f64) -> Selection {
    assert!(!cells.is_empty(), "no sweep cells to select from");
    // Cells that never covered the required range did not produce the
    // observable; they are ineligible. (If nothing covered, fall back to
    // everything rather than panic — the caller's report will show why.)
    let eligible: Vec<ParameterCell> = {
        let covered: Vec<ParameterCell> = cells.iter().copied().filter(|c| c.covered).collect();
        if covered.is_empty() {
            cells.to_vec()
        } else {
            covered
        }
    };
    let cells = &eligible[..];
    // Rank κ values by their best cell score.
    let mut kappas: Vec<f64> = cells.iter().map(|c| c.kappa_pn_per_a).collect();
    kappas.sort_by(f64::total_cmp);
    kappas.dedup();
    let mut kappa_ranking: Vec<(f64, f64)> = kappas
        .iter()
        .map(|&k| {
            let best = cells
                .iter()
                .filter(|c| c.kappa_pn_per_a == k)
                .map(ParameterCell::score)
                .fold(f64::INFINITY, f64::min);
            (k, best)
        })
        .collect();
    kappa_ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best_kappa = kappa_ranking[0].0;

    // Within the best κ: candidate vs sorted ascending.
    let mut column: Vec<&ParameterCell> = cells
        .iter()
        .filter(|c| c.kappa_pn_per_a == best_kappa)
        .collect();
    column.sort_by(|a, b| a.v_a_per_ns.total_cmp(&b.v_a_per_ns));

    // Within the best κ, take the slowest velocity — it carries the least
    // dissipation bias. The paper's convergence check (v = 12.5 vs 25 at
    // κ = 100 "insignificantly different") tells us whether that slowest
    // point is trustworthy: if even halving v changes nothing, the PMF
    // has converged in v.
    let chosen = column[0];
    let converged = column
        .get(1)
        .map(|next| next.delta_vs_slower.is_finite() && next.delta_vs_slower < significance)
        .unwrap_or(false);

    Selection {
        kappa_pn_per_a: chosen.kappa_pn_per_a,
        v_a_per_ns: chosen.v_a_per_ns,
        score: chosen.score(),
        converged,
        kappa_ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic sweep with the paper's qualitative structure:
    /// σ_stat: worst at κ=1000, best at κ=10 (before normalization costs);
    /// σ_sys: worst at κ=10 and grows with v.
    fn paper_like_cells() -> Vec<ParameterCell> {
        let mut cells = Vec::new();
        for &kappa in &[10.0, 100.0, 1000.0] {
            for &v in &[12.5, 25.0, 50.0, 100.0] {
                let sigma_stat = match kappa as u64 {
                    10 => 0.5,
                    100 => 1.0,
                    _ => 3.0,
                } * (100.0f64 / v).sqrt()
                    * 0.5;
                let sigma_sys = match kappa as u64 {
                    10 => 4.0,
                    100 => 0.5,
                    _ => 1.0,
                } * (v / 12.5).sqrt()
                    * 0.5;
                let delta_vs_slower = if v == 12.5 {
                    f64::NAN
                } else if kappa == 100.0 && v == 25.0 {
                    0.05 // indistinguishable pair, as in the paper
                } else {
                    1.5
                };
                cells.push(ParameterCell {
                    kappa_pn_per_a: kappa,
                    v_a_per_ns: v,
                    sigma_stat,
                    sigma_sys,
                    delta_vs_slower,
                    covered: true,
                });
            }
        }
        cells
    }

    #[test]
    fn selects_paper_optimum_on_paper_like_data() {
        let sel = select_optimal(&paper_like_cells(), 0.3);
        assert_eq!(
            sel.kappa_pn_per_a, 100.0,
            "κ ranking: {:?}",
            sel.kappa_ranking
        );
        assert_eq!(sel.v_a_per_ns, 12.5);
        assert!(sel.converged, "12.5 vs 25 indistinguishable → converged");
    }

    #[test]
    fn unconverged_sweep_flagged() {
        let mut cells = paper_like_cells();
        // Make 25 vs 12.5 at κ=100 significantly different.
        for c in &mut cells {
            if c.kappa_pn_per_a == 100.0 && c.v_a_per_ns == 25.0 {
                c.delta_vs_slower = 2.0;
            }
        }
        let sel = select_optimal(&cells, 0.3);
        assert_eq!(sel.v_a_per_ns, 12.5, "still picks the slowest");
        assert!(!sel.converged);
    }

    #[test]
    fn kappa_ranking_orders_all_kappas() {
        let sel = select_optimal(&paper_like_cells(), 0.3);
        assert_eq!(sel.kappa_ranking.len(), 3);
        assert!(sel.kappa_ranking[0].1 <= sel.kappa_ranking[1].1);
        assert!(sel.kappa_ranking[1].1 <= sel.kappa_ranking[2].1);
    }

    #[test]
    fn single_cell_table() {
        let cells = vec![ParameterCell {
            kappa_pn_per_a: 50.0,
            v_a_per_ns: 20.0,
            sigma_stat: 1.0,
            sigma_sys: 1.0,
            delta_vs_slower: f64::NAN,
            covered: true,
        }];
        let sel = select_optimal(&cells, 0.3);
        assert_eq!(sel.kappa_pn_per_a, 50.0);
        assert_eq!(sel.v_a_per_ns, 20.0);
        assert!((sel.score - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn score_is_quadrature_sum() {
        let c = ParameterCell {
            kappa_pn_per_a: 1.0,
            v_a_per_ns: 1.0,
            sigma_stat: 3.0,
            sigma_sys: 4.0,
            delta_vs_slower: f64::NAN,
            covered: true,
        };
        assert!((c.score() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_kappa_is_ineligible() {
        let mut cells = paper_like_cells();
        // Make κ=10 (otherwise competitive) fail coverage everywhere.
        for c in &mut cells {
            if c.kappa_pn_per_a == 10.0 {
                c.covered = false;
                c.sigma_stat = 0.01;
                c.sigma_sys = 0.01;
            }
        }
        let sel = select_optimal(&cells, 0.3);
        assert_ne!(sel.kappa_pn_per_a, 10.0, "uncovered κ must not win");
    }

    #[test]
    fn all_uncovered_falls_back() {
        let mut cells = paper_like_cells();
        for c in &mut cells {
            c.covered = false;
        }
        let sel = select_optimal(&cells, 0.3);
        assert_eq!(sel.kappa_pn_per_a, 100.0, "fallback still selects");
    }

    #[test]
    #[should_panic(expected = "no sweep cells")]
    fn empty_table_rejected() {
        select_optimal(&[], 0.1);
    }
}
