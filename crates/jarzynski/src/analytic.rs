//! Reference PMFs for validation.
//!
//! The JE pipeline is validated end-to-end on systems whose PMF is known
//! in closed form (harmonic wells) or computable by quadrature (a single
//! bead in an axisymmetric pore potential): the *adiabatic* profile the
//! paper calls "the putatively correct PMF".

/// PMF of a particle restrained by `U = a z²` (spice-md's `Restraint`
/// convention, no ½): `Φ(z) = a z²` up to a constant.
pub fn harmonic_pmf(a: f64) -> impl Fn(f64) -> f64 {
    move |z| a * z * z
}

/// PMF along z for a single bead in an axisymmetric external potential
/// `u(ρ, z)`, by radial quadrature:
///
/// `Φ(z) = −kT ln ∫₀^ρmax exp(−u(ρ,z)/kT) 2πρ dρ`
///
/// normalized so that `Φ(z_gauge) = 0`.
pub fn radial_quadrature_pmf(
    u: impl Fn(f64, f64) -> f64,
    kt: f64,
    rho_max: f64,
    nrho: usize,
    z_gauge: f64,
) -> impl Fn(f64) -> f64 {
    assert!(kt > 0.0 && rho_max > 0.0 && nrho >= 8);
    let free_energy = move |z: f64, u: &dyn Fn(f64, f64) -> f64| -> f64 {
        let drho = rho_max / nrho as f64;
        let mut integral = 0.0;
        for i in 0..nrho {
            let rho = (i as f64 + 0.5) * drho;
            integral += (-u(rho, z) / kt).exp() * 2.0 * std::f64::consts::PI * rho * drho;
        }
        -kt * integral.max(1e-300).ln()
    };
    let gauge = free_energy(z_gauge, &u);
    move |z| free_energy(z, &u) - gauge
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::units::KT_300;

    #[test]
    fn harmonic_reference() {
        let phi = harmonic_pmf(2.0);
        assert_eq!(phi(0.0), 0.0);
        assert_eq!(phi(3.0), 18.0);
    }

    #[test]
    fn quadrature_of_z_only_potential_recovers_it() {
        // u(ρ,z) = z² + wall at ρ>5 : radial part is z-independent, so
        // Φ(z) = z² exactly.
        let u = |rho: f64, z: f64| {
            if rho > 5.0 {
                1e6
            } else {
                z * z
            }
        };
        let phi = radial_quadrature_pmf(u, KT_300, 10.0, 2000, 0.0);
        for z in [0.5, 1.0, 2.0] {
            assert!((phi(z) - z * z).abs() < 1e-6, "phi({z}) = {}", phi(z));
        }
    }

    #[test]
    fn narrowing_channel_costs_entropy() {
        // u confines to ρ < R(z) with R shrinking: Φ rises by
        // −kT ln(A₂/A₁) = 2 kT ln(R₁/R₂).
        let u = |rho: f64, z: f64| {
            let r_allowed = if z < 0.5 { 4.0 } else { 2.0 };
            if rho > r_allowed {
                1e6
            } else {
                0.0
            }
        };
        let phi = radial_quadrature_pmf(u, KT_300, 10.0, 4000, 0.0);
        let expected = 2.0 * KT_300 * (4.0f64 / 2.0).ln();
        assert!(
            (phi(1.0) - expected).abs() < 0.01,
            "entropic barrier {} vs {expected}",
            phi(1.0)
        );
    }

    #[test]
    fn gauge_point_is_zero() {
        let u = |rho: f64, z: f64| 0.1 * z * z + 0.01 * rho * rho;
        let phi = radial_quadrature_pmf(u, KT_300, 20.0, 1000, 1.5);
        assert!(phi(1.5).abs() < 1e-12);
    }
}
