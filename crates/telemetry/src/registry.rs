//! Typed metrics: counters, gauges, histograms, and the central
//! registry that exports them in deterministic (name-sorted) order.
//!
//! Counters are relaxed atomics: integer sums commute, so however many
//! worker threads increment a shared counter the final value is
//! identical run-to-run — the one concurrency pattern that cannot leak
//! nondeterminism into an export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing integer metric. Cloning shares the value.
#[derive(Clone, Default, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// An independent counter starting at this one's current value —
    /// used by `Clone` impls of simulation state that must not share
    /// counts with their original (ensemble clones count separately).
    pub fn fresh_copy(&self) -> Counter {
        Counter {
            value: Arc::new(AtomicU64::new(self.get())),
        }
    }
}

/// A last-value-wins floating-point metric (stored as `f64` bits).
#[derive(Clone, Default, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge reading 0.0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    /// Upper bucket bounds, ascending; one extra overflow bucket past
    /// the last bound.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: Mutex<f64>,
}

/// A fixed-bucket histogram. Cloning shares the buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Build with ascending upper bounds; values above the last bound
    /// land in an implicit overflow bucket.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be ascending"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: Mutex::new(0.0),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.total.fetch_add(1, Ordering::Relaxed);
        *self.inner.sum.lock().expect("histogram sum poisoned") += v;
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        *self.inner.sum.lock().expect("histogram sum poisoned")
    }

    /// Upper bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, last = overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Merge previously exported state back in — used by checkpoint
    /// restore to continue a histogram exactly where a snapshot left it.
    /// `counts` shorter or longer than the bucket list is truncated to
    /// the overlap; the caller is expected to recreate the histogram with
    /// the snapshot's own bounds so the shapes match.
    pub fn merge_counts(&self, counts: &[u64], sum: f64) {
        for (bucket, &n) in self.inner.counts.iter().zip(counts) {
            bucket.fetch_add(n, Ordering::Relaxed);
            self.inner.total.fetch_add(n, Ordering::Relaxed);
        }
        *self.inner.sum.lock().expect("histogram sum poisoned") += sum;
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Point-in-time value of one metric, used by exporters and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Upper bucket bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts (last = overflow).
        counts: Vec<u64>,
        /// Sum of observations.
        sum: f64,
    },
}

/// The central metric table. Name-keyed `BTreeMap` so snapshots export
/// in one deterministic order.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    fn table(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().expect("telemetry registry poisoned")
    }

    /// Get-or-create the counter `name`. A name already registered as a
    /// different type yields a fresh unregistered counter rather than
    /// clobbering the existing metric.
    pub fn counter(&self, name: &str) -> Counter {
        let mut t = self.table();
        match t
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Register an existing counter handle under `name` (live view).
    pub fn bind_counter(&self, name: &str, c: &Counter) {
        self.table()
            .insert(name.to_string(), Metric::Counter(c.clone()));
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = self.table();
        match t
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut t = self.table();
        match t
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::with_bounds(bounds),
        }
    }

    /// Every metric's current value, name-sorted.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.table()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(2);
        c2.incr();
        assert_eq!(c.get(), 3);
        let fresh = c.fresh_copy();
        fresh.incr();
        assert_eq!(c.get(), 3, "fresh copy is independent");
        assert_eq!(fresh.get(), 4);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::with_bounds(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), [2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.4).abs() < 1e-12);
    }

    #[test]
    fn registry_get_or_create_and_order() {
        let r = Registry::default();
        let c = r.counter("b.count");
        c.add(7);
        assert_eq!(r.counter("b.count").get(), 7, "same handle by name");
        r.gauge("a.gauge").set(1.5);
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.gauge", "b.count"], "name-sorted export");
    }

    #[test]
    fn concurrent_counter_sum_is_exact() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
