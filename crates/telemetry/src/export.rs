//! Exporters: human-readable summary tree, JSON-lines event stream,
//! and Chrome `chrome://tracing` JSON.
//!
//! All three read a [`Snapshot`], whose track and metric order is
//! deterministic, and use only ordering-stable formatting — so an
//! instrumented replay exports byte-identical artifacts.

use crate::registry::MetricValue;
use crate::span::{EventKind, TrackSnapshot};
use crate::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct Node {
    count: u64,
    ticks: u64,
    children: BTreeMap<&'static str, Node>,
}

/// Aggregate one track's events into the shared span tree and count its
/// instants. Unclosed spans are closed at the track's final clock.
fn fold_track(track: &TrackSnapshot, root: &mut Node, instants: &mut BTreeMap<&'static str, u64>) {
    let final_clock = track.events.last().map_or(0, |e| e.logical);
    let mut stack: Vec<(&'static str, u64)> = Vec::new();
    let close = |root: &mut Node, stack: &[(&'static str, u64)], at: u64| {
        let mut node = &mut *root;
        for (name, _) in stack {
            node = node.children.entry(name).or_default();
        }
        node.count += 1;
        let entered = stack.last().map_or(0, |(_, t)| *t);
        node.ticks += at.saturating_sub(entered);
    };
    for e in &track.events {
        match e.kind {
            EventKind::Enter => stack.push((e.name, e.logical)),
            EventKind::Exit => {
                if !stack.is_empty() {
                    close(root, &stack, e.logical);
                    stack.pop();
                }
            }
            EventKind::Instant => *instants.entry(e.name).or_default() += 1,
        }
    }
    while !stack.is_empty() {
        close(root, &stack, final_clock);
        stack.pop();
    }
}

fn render_node(out: &mut String, name: &str, node: &Node, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{name}");
    let _ = writeln!(
        out,
        "  {label:<40} count={:<8} ticks={}",
        node.count, node.ticks
    );
    for (child_name, child) in &node.children {
        render_node(out, child_name, child, depth + 1);
    }
}

/// Flamegraph-style aggregated span tree plus the metric listing.
pub fn summary_tree(snap: &Snapshot) -> String {
    let mut root = Node::default();
    let mut instants: BTreeMap<&'static str, u64> = BTreeMap::new();
    for track in &snap.tracks {
        fold_track(track, &mut root, &mut instants);
    }
    let mut out = String::from("telemetry summary\n");
    let _ = writeln!(out, "tracks: {}", snap.tracks.len());
    out.push_str("span tree (logical ticks)\n");
    for (name, node) in &root.children {
        render_node(&mut out, name, node, 0);
    }
    if !instants.is_empty() {
        out.push_str("instants\n");
        for (name, n) in &instants {
            let _ = writeln!(out, "  {name:<42} x{n}");
        }
    }
    if !snap.metrics.is_empty() {
        out.push_str("metrics\n");
        for (name, v) in &snap.metrics {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "  {name:<42} = {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "  {name:<42} = {}", fmt_f64(*g));
                }
                MetricValue::Histogram { counts, sum, .. } => {
                    let n: u64 = counts.iter().sum();
                    let _ = writeln!(
                        out,
                        "  {name:<42} n={n} sum={} buckets={counts:?}",
                        fmt_f64(*sum)
                    );
                }
            }
        }
    }
    out
}

/// Escape a string for a JSON literal body. Beyond the mandatory set
/// (quote, backslash, C0 controls), DEL and the U+2028/U+2029 line
/// separators are `\u`-escaped: both separators are legal raw inside
/// JSON strings but terminate lines in JavaScript and some line-oriented
/// consumers, which would corrupt the one-object-per-line JSONL framing.
/// All other multi-byte characters pass through as UTF-8.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Deterministic JSON-safe float formatting (shortest round-trip;
/// non-finite values become null).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn attrs_json(attrs: &[(&'static str, String)]) -> String {
    let body: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// One JSON object per line: every span/instant event in track order,
/// then every metric in name order.
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for track in &snap.tracks {
        for e in &track.events {
            let kind = match e.kind {
                EventKind::Enter => "enter",
                EventKind::Exit => "exit",
                EventKind::Instant => "instant",
            };
            let _ = write!(
                out,
                "{{\"type\":\"{kind}\",\"track\":\"{}\",\"key\":{},\"name\":\"{}\",\"logical\":{}",
                json_escape(track.name),
                track.key,
                json_escape(e.name),
                e.logical
            );
            if let Some(ns) = e.wall_ns {
                let _ = write!(out, ",\"wall_ns\":{ns}");
            }
            if !e.attrs.is_empty() {
                let _ = write!(out, ",\"attrs\":{}", attrs_json(&e.attrs));
            }
            out.push_str("}\n");
        }
    }
    for (name, v) in &snap.metrics {
        match v {
            MetricValue::Counter(c) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{c}}}",
                    json_escape(name)
                );
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                    json_escape(name),
                    fmt_f64(*g)
                );
            }
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
            } => {
                let b: Vec<String> = bounds.iter().map(|v| fmt_f64(*v)).collect();
                let c: Vec<String> = counts.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{{\"type\":\"histogram\",\"name\":\"{}\",\"bounds\":[{}],\"counts\":[{}],\"sum\":{}}}",
                    json_escape(name),
                    b.join(","),
                    c.join(","),
                    fmt_f64(*sum)
                );
            }
        }
    }
    out
}

/// Chrome `chrome://tracing` / Perfetto JSON. Each track becomes a
/// "thread"; `ts` is the wall clock (µs) when captured (`timing`
/// feature), the logical clock otherwise.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut events: Vec<String> = Vec::new();
    for (tid, track) in snap.tracks.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}/{}\"}}}}",
            json_escape(track.name),
            track.key
        ));
        for e in &track.events {
            let ts = match e.wall_ns {
                Some(ns) => ns / 1_000,
                None => e.logical,
            };
            let mut line = match e.kind {
                EventKind::Enter => format!(
                    "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}",
                    json_escape(e.name)
                ),
                EventKind::Exit => format!(
                    "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}",
                    json_escape(e.name)
                ),
                EventKind::Instant => format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}",
                    json_escape(e.name)
                ),
            };
            if !e.attrs.is_empty() {
                let _ = write!(line, ",\"args\":{}", attrs_json(&e.attrs));
            }
            line.push('}');
            events.push(line);
        }
    }
    let mut counter_ts = 0u64;
    for (name, v) in &snap.metrics {
        if let MetricValue::Counter(c) = v {
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":0,\"ts\":{counter_ts},\
                 \"args\":{{\"value\":{c}}}}}",
                json_escape(name)
            ));
            counter_ts += 1;
        }
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEvent;

    fn demo_snapshot() -> Snapshot {
        let ev = |kind, name, logical| SpanEvent {
            kind,
            name,
            logical,
            wall_ns: None,
            attrs: Vec::new(),
        };
        Snapshot {
            tracks: vec![TrackSnapshot {
                name: "real",
                key: 0,
                events: vec![
                    ev(EventKind::Enter, "run", 0),
                    ev(EventKind::Enter, "pull", 2),
                    SpanEvent {
                        kind: EventKind::Instant,
                        name: "rebuild",
                        logical: 5,
                        wall_ns: None,
                        attrs: vec![("n", "1".to_string())],
                    },
                    ev(EventKind::Exit, "pull", 10),
                    ev(EventKind::Exit, "run", 12),
                ],
            }],
            metrics: vec![
                ("md.pairs".to_string(), MetricValue::Counter(42)),
                ("work.mean".to_string(), MetricValue::Gauge(1.5)),
            ],
        }
    }

    #[test]
    fn summary_tree_nests_and_sums() {
        let s = summary_tree(&demo_snapshot());
        assert!(s.contains("run"), "{s}");
        assert!(s.contains("ticks=12"), "{s}");
        assert!(s.contains("ticks=8"), "pull span is 10-2: {s}");
        assert!(s.contains("rebuild"), "{s}");
        assert!(s.contains("md.pairs"), "{s}");
        let run_line = s.lines().position(|l| l.contains("run")).unwrap();
        let pull_line = s.lines().position(|l| l.contains("pull")).unwrap();
        assert!(pull_line > run_line, "child rendered under parent");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let out = jsonl(&demo_snapshot());
        assert_eq!(out.lines().count(), 5 + 2);
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
        assert!(out.contains("\"attrs\":{\"n\":\"1\"}"), "{out}");
        assert!(out.contains("\"type\":\"counter\""), "{out}");
    }

    #[test]
    fn chrome_trace_balances_begin_end() {
        let out = chrome_trace(&demo_snapshot());
        assert_eq!(out.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(out.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(out.matches("\"ph\":\"i\"").count(), 1);
        assert!(out.contains("\"thread_name\""));
        assert!(out.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(2.5), "2.5");
    }

    #[test]
    fn escaping_handles_del_separators_and_multibyte() {
        assert_eq!(json_escape("\u{7f}"), "\\u007f");
        assert_eq!(json_escape("\u{2028}\u{2029}"), "\\u2028\\u2029");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("π 😀 é"), "π 😀 é", "multi-byte passes through");
    }

    #[test]
    fn hostile_names_export_as_valid_single_line_json() {
        use crate::span::intern;
        use crate::Telemetry;
        let hostile = intern("a\"b\\c\nd\u{2028}e π😀 \u{7f}");
        let t = Telemetry::enabled();
        t.track(hostile, 0)
            .instant(hostile, vec![("k", hostile.to_string())]);
        t.counter(hostile).incr();

        for export in [t.jsonl(), t.chrome_trace()] {
            for line in export.lines().filter(|l| l.contains("\\u2028")) {
                assert!(
                    !line.contains('\u{2028}') && !line.contains('\u{7f}'),
                    "no raw separators/DEL in: {line}"
                );
            }
            // One-object-per-line framing survives: no raw newline or
            // line separator inside any line, quotes all escaped.
            for line in export.lines() {
                let bytes = line.as_bytes();
                let mut i = 0;
                let mut in_str = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if in_str => i += 1, // skip escaped char
                        b'"' => in_str = !in_str,
                        _ => {}
                    }
                    i += 1;
                }
                assert!(!in_str, "unbalanced quotes in exported line: {line}");
            }
        }
        let jsonl = t.jsonl();
        assert_eq!(
            jsonl.lines().count(),
            2,
            "hostile names stay on their own lines: {jsonl}"
        );
    }

    #[test]
    fn unclosed_span_is_closed_at_final_clock() {
        let snap = Snapshot {
            tracks: vec![TrackSnapshot {
                name: "t",
                key: 0,
                events: vec![SpanEvent {
                    kind: EventKind::Enter,
                    name: "open",
                    logical: 3,
                    wall_ns: None,
                    attrs: Vec::new(),
                }],
            }],
            metrics: Vec::new(),
        };
        let s = summary_tree(&snap);
        assert!(s.contains("open"), "{s}");
        assert!(s.contains("count=1"), "{s}");
    }
}
