//! Profiling hooks: sampling callbacks at fixed simulation boundaries.
//!
//! A probe point is a named place in a hot loop where instrumentation
//! may observe (never alter) the simulation: the sample carries the
//! logical clock and one scalar. Firing a point with no installed
//! handler costs one relaxed atomic load, so probes can sit on the
//! force-eval path without a measurable tax.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The fixed set of instrumented boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbePoint {
    /// After each force-field evaluation (value: potential energy).
    ForceEval,
    /// After a Verlet neighbor-list rebuild (value: rebuild count).
    VerletRebuild,
    /// After each discrete-event-simulation event pops (value: sim-time
    /// hours).
    DesEvent,
    /// After each steering message is routed (value: delivered count).
    SteeringMessage,
}

impl ProbePoint {
    /// All points, index-aligned with the handler table.
    pub const ALL: [ProbePoint; 4] = [
        ProbePoint::ForceEval,
        ProbePoint::VerletRebuild,
        ProbePoint::DesEvent,
        ProbePoint::SteeringMessage,
    ];

    fn idx(self) -> usize {
        match self {
            ProbePoint::ForceEval => 0,
            ProbePoint::VerletRebuild => 1,
            ProbePoint::DesEvent => 2,
            ProbePoint::SteeringMessage => 3,
        }
    }

    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            ProbePoint::ForceEval => "force_eval",
            ProbePoint::VerletRebuild => "verlet_rebuild",
            ProbePoint::DesEvent => "des_event",
            ProbePoint::SteeringMessage => "steering_message",
        }
    }
}

/// What a probe handler receives.
#[derive(Debug, Clone, Copy)]
pub struct ProbeSample {
    /// Which boundary fired.
    pub point: ProbePoint,
    /// Logical clock at the boundary (MD step, DES tick, message seq).
    pub logical: u64,
    /// One scalar chosen by the instrumented site.
    pub value: f64,
}

type Handler = Box<dyn Fn(&ProbeSample) + Send + Sync>;

/// Handler table: per-point install counts for the fast path, one
/// mutex-guarded list for the slow path.
pub(crate) struct Probes {
    counts: [AtomicUsize; 4],
    handlers: Mutex<Vec<(usize, Handler)>>,
}

impl Probes {
    pub(crate) fn new() -> Probes {
        Probes {
            counts: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
            handlers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn add(&self, point: ProbePoint, f: Handler) {
        self.handlers
            .lock()
            .expect("probe table poisoned")
            .push((point.idx(), f));
        self.counts[point.idx()].fetch_add(1, Ordering::Release);
    }

    #[inline]
    pub(crate) fn fire(&self, sample: &ProbeSample) {
        if self.counts[sample.point.idx()].load(Ordering::Acquire) == 0 {
            return;
        }
        let handlers = self.handlers.lock().expect("probe table poisoned");
        for (idx, f) in handlers.iter() {
            if *idx == sample.point.idx() {
                f(sample);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn handlers_are_point_selective() {
        let p = Probes::new();
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        p.add(
            ProbePoint::VerletRebuild,
            Box::new(move |s| {
                n2.fetch_add(s.value as u64, Ordering::Relaxed);
            }),
        );
        p.fire(&ProbeSample {
            point: ProbePoint::ForceEval,
            logical: 1,
            value: 100.0,
        });
        p.fire(&ProbeSample {
            point: ProbePoint::VerletRebuild,
            logical: 2,
            value: 3.0,
        });
        assert_eq!(n.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn point_names_are_stable() {
        let names: Vec<&str> = ProbePoint::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "force_eval",
                "verlet_rebuild",
                "des_event",
                "steering_message"
            ]
        );
    }
}
