//! Tracks, span events and RAII scope guards.
//!
//! A **track** is one logically-serial event stream — a realization, a
//! grid job, the steering service — identified by `(name, key)`. All
//! events on a track carry a **logical clock** value supplied by the
//! caller (MD step, DES sim-time tick); the track enforces monotonicity
//! so an exporter can always reconstruct a well-formed span tree.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Intern a string, returning a `&'static str` that compares equal to
/// every other interned copy of the same text.
///
/// Span and instant names are `&'static str` so live recording never
/// allocates; a checkpoint restore, however, reads names back out of a
/// serialized snapshot as owned strings. Interning gives those names the
/// required `'static` lifetime while deduplicating, so restoring the
/// same campaign any number of times leaks each distinct name at most
/// once per process.
pub fn intern(s: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().expect("intern pool poisoned");
    if let Some(&hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Enter,
    /// The innermost open span closed.
    Exit,
    /// A point event (failure, retry, checkpoint, message).
    Instant,
}

/// One recorded event on a track.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Span or instant name (static so streams stay allocation-light).
    pub name: &'static str,
    /// Logical-clock stamp (monotone within a track).
    pub logical: u64,
    /// Wall-clock nanoseconds since the first capture — `Some` only
    /// when the crate is built with the `timing` feature.
    pub wall_ns: Option<u64>,
    /// Key/value annotations (failure kind, job id, …).
    pub attrs: Vec<(&'static str, String)>,
}

/// Shared state of one track.
pub(crate) struct TrackState {
    name: &'static str,
    key: u64,
    clock: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
}

impl TrackState {
    pub(crate) fn new(name: &'static str, key: u64) -> TrackState {
        TrackState {
            name,
            key,
            clock: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    fn push(
        &self,
        kind: EventKind,
        name: &'static str,
        logical: u64,
        attrs: Vec<(&'static str, String)>,
    ) -> u64 {
        // Clamp to the track clock so streams are monotone even if a
        // caller hands a stale stamp, then advance the clock.
        let stamped = logical.max(self.clock.load(Ordering::Relaxed));
        self.clock.fetch_max(stamped, Ordering::Relaxed);
        self.events
            .lock()
            .expect("telemetry track buffer poisoned")
            .push(SpanEvent {
                kind,
                name,
                logical: stamped,
                wall_ns: wall_now_ns(),
                attrs,
            });
        stamped
    }

    pub(crate) fn snapshot(&self) -> TrackSnapshot {
        TrackSnapshot {
            name: self.name,
            key: self.key,
            events: self
                .events
                .lock()
                .expect("telemetry track buffer poisoned")
                .clone(),
        }
    }
}

/// Wall-clock nanoseconds since first use. Compiled to `None` without
/// the `timing` feature — the default build contains no clock reads.
#[cfg(feature = "timing")]
fn wall_now_ns() -> Option<u64> {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Some(Instant::now().duration_since(epoch).as_nanos() as u64)
}

#[cfg(not(feature = "timing"))]
fn wall_now_ns() -> Option<u64> {
    None
}

/// Handle to one track. Cloning is cheap; a disabled track ignores
/// every call.
#[derive(Clone, Default)]
pub struct Track {
    state: Option<Arc<TrackState>>,
}

impl Track {
    /// The inert track.
    pub fn disabled() -> Track {
        Track { state: None }
    }

    pub(crate) fn live(state: Arc<TrackState>) -> Track {
        Track { state: Some(state) }
    }

    /// True when events are recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Advance the logical clock to at least `logical`.
    #[inline]
    pub fn tick(&self, logical: u64) {
        if let Some(s) = &self.state {
            s.clock.fetch_max(logical, Ordering::Relaxed);
        }
    }

    /// Current logical clock.
    pub fn clock(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.clock.load(Ordering::Relaxed))
    }

    /// Open a span at the current clock; it closes (at the then-current
    /// clock) when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_at(name, self.clock())
    }

    /// Open a span at an explicit logical stamp.
    pub fn span_at(&self, name: &'static str, logical: u64) -> SpanGuard {
        if let Some(s) = &self.state {
            s.push(EventKind::Enter, name, logical, Vec::new());
        }
        SpanGuard {
            track: self.clone(),
            name,
        }
    }

    /// Open a span at an explicit stamp *without* a guard — for
    /// event-driven code (a DES engine) where span boundaries are events,
    /// not scopes. The caller owes a matching [`Track::exit_at`].
    pub fn enter_at(&self, name: &'static str, logical: u64) {
        if let Some(s) = &self.state {
            s.push(EventKind::Enter, name, logical, Vec::new());
        }
    }

    /// Close the innermost open span at an explicit stamp (pairs with
    /// [`Track::enter_at`]).
    pub fn exit_at(&self, name: &'static str, logical: u64) {
        if let Some(s) = &self.state {
            s.push(EventKind::Exit, name, logical, Vec::new());
        }
    }

    /// Record a point event at the current clock.
    pub fn instant(&self, name: &'static str, attrs: Vec<(&'static str, String)>) {
        self.instant_at(name, self.clock(), attrs);
    }

    /// Record a point event at an explicit logical stamp.
    pub fn instant_at(&self, name: &'static str, logical: u64, attrs: Vec<(&'static str, String)>) {
        if let Some(s) = &self.state {
            s.push(EventKind::Instant, name, logical, attrs);
        }
    }

    /// Append one recorded event verbatim — used by checkpoint restore
    /// to replay a serialized [`TrackSnapshot`] into a fresh track.
    /// Recorded streams are already monotone, so the clock clamp is a
    /// no-op and the stream continues bit-identically from where the
    /// snapshot left it.
    pub fn import_event(
        &self,
        kind: EventKind,
        name: &'static str,
        logical: u64,
        attrs: Vec<(&'static str, String)>,
    ) {
        if let Some(s) = &self.state {
            s.push(kind, name, logical, attrs);
        }
    }
}

/// RAII span guard returned by [`Track::span`]; records the matching
/// exit event on drop.
pub struct SpanGuard {
    track: Track,
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = &self.track.state {
            s.push(EventKind::Exit, self.name, self.track.clock(), Vec::new());
        }
    }
}

/// One track's recorded stream, cloned out of the shared buffers.
#[derive(Debug, Clone)]
pub struct TrackSnapshot {
    /// Track name.
    pub name: &'static str,
    /// Logical key (realization index, job id, …).
    pub key: u64,
    /// Events in append order.
    pub events: Vec<SpanEvent>,
}

impl TrackSnapshot {
    /// Check span-tree well-formedness: every exit matches the
    /// innermost open span, nothing closes an empty stack, and logical
    /// stamps never decrease.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let mut stack: Vec<&'static str> = Vec::new();
        let mut last = 0u64;
        for (i, e) in self.events.iter().enumerate() {
            if e.logical < last {
                return Err(format!(
                    "track {}/{}: event {i} ({}) logical clock went backwards: {} < {last}",
                    self.name, self.key, e.name, e.logical
                ));
            }
            last = e.logical;
            match e.kind {
                EventKind::Enter => stack.push(e.name),
                EventKind::Exit => match stack.pop() {
                    Some(open) if open == e.name => {}
                    Some(open) => {
                        return Err(format!(
                            "track {}/{}: exit `{}` does not match open span `{open}`",
                            self.name, self.key, e.name
                        ))
                    }
                    None => {
                        return Err(format!(
                            "track {}/{}: exit `{}` with no open span",
                            self.name, self.key, e.name
                        ))
                    }
                },
                EventKind::Instant => {}
            }
        }
        if let Some(open) = stack.pop() {
            return Err(format!(
                "track {}/{}: span `{open}` never closed",
                self.name, self.key
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_track() -> Track {
        Track::live(Arc::new(TrackState::new("t", 0)))
    }

    #[test]
    fn guards_produce_balanced_streams() {
        let t = live_track();
        {
            let _outer = t.span_at("outer", 0);
            t.tick(5);
            {
                let _inner = t.span("inner");
                t.tick(9);
            }
            t.tick(12);
        }
        let snap = t.state.as_ref().unwrap().snapshot();
        snap.check_well_formed().unwrap();
        let kinds: Vec<EventKind> = snap.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EventKind::Enter,
                EventKind::Enter,
                EventKind::Exit,
                EventKind::Exit
            ]
        );
        assert_eq!(snap.events[2].name, "inner");
        assert_eq!(snap.events[2].logical, 9);
        assert_eq!(snap.events[3].logical, 12);
    }

    #[test]
    fn stale_stamps_are_clamped_monotone() {
        let t = live_track();
        t.tick(100);
        t.instant_at("late", 40, Vec::new());
        let snap = t.state.as_ref().unwrap().snapshot();
        assert_eq!(snap.events[0].logical, 100, "stamp clamped to clock");
        snap.check_well_formed().unwrap();
    }

    #[test]
    fn well_formedness_rejects_mismatch() {
        let bad = TrackSnapshot {
            name: "t",
            key: 0,
            events: vec![
                SpanEvent {
                    kind: EventKind::Enter,
                    name: "a",
                    logical: 0,
                    wall_ns: None,
                    attrs: Vec::new(),
                },
                SpanEvent {
                    kind: EventKind::Exit,
                    name: "b",
                    logical: 1,
                    wall_ns: None,
                    attrs: Vec::new(),
                },
            ],
        };
        assert!(bad.check_well_formed().is_err());
    }

    #[test]
    fn well_formedness_rejects_unclosed() {
        let bad = TrackSnapshot {
            name: "t",
            key: 0,
            events: vec![SpanEvent {
                kind: EventKind::Enter,
                name: "a",
                logical: 0,
                wall_ns: None,
                attrs: Vec::new(),
            }],
        };
        assert!(bad.check_well_formed().is_err());
    }

    #[test]
    fn intern_deduplicates_and_outlives() {
        let a = intern("checkpoint.phase");
        let b = intern(&String::from("checkpoint.phase"));
        assert!(std::ptr::eq(a, b), "same text interns to the same slice");
        assert_eq!(a, "checkpoint.phase");
    }

    #[test]
    fn import_replays_a_snapshot_bit_identically() {
        let original = live_track();
        {
            let _g = original.span_at("run", 3);
            original.instant_at("mark", 7, vec![("k", "v".to_string())]);
            original.tick(9);
        }
        let snap = original.state.as_ref().unwrap().snapshot();

        let restored = live_track();
        for e in &snap.events {
            restored.import_event(e.kind, e.name, e.logical, e.attrs.clone());
        }
        let rsnap = restored.state.as_ref().unwrap().snapshot();
        assert_eq!(rsnap.events.len(), snap.events.len());
        for (a, b) in snap.events.iter().zip(&rsnap.events) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.name, b.name);
            assert_eq!(a.logical, b.logical);
            assert_eq!(a.attrs, b.attrs);
        }
        assert_eq!(
            restored.clock(),
            snap.events.last().unwrap().logical,
            "clock resumes at the last imported stamp"
        );
        rsnap.check_well_formed().unwrap();
    }

    #[test]
    fn disabled_track_records_nothing() {
        let t = Track::disabled();
        t.tick(5);
        let _g = t.span("s");
        t.instant("i", Vec::new());
        assert_eq!(t.clock(), 0);
    }
}
