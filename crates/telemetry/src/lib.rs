//! `spice-telemetry`: deterministic spans, counters and profiling hooks.
//!
//! SPICE's operators watched a trans-Atlantic campaign live; our
//! reproduction needs the same visibility without giving up its core
//! property — bit-identical replays. This crate is the one shared
//! instrumentation vocabulary:
//!
//! * **Spans** — RAII scope guards on named *tracks*, stamped with a
//!   caller-supplied **logical clock** (MD steps, DES sim-time ticks,
//!   realization indices). Wall-clock capture exists only behind the
//!   `timing` feature, and only inside this crate, so the default build
//!   contains no clock reads anywhere in simulation logic (spice-lint
//!   D002 stays enforceable).
//! * **Counters / gauges / histograms** — typed metrics in a central
//!   [`Registry`] exported in `BTreeMap` (name-sorted) order.
//! * **Profiling hooks** — sampling callbacks at force-eval,
//!   Verlet-rebuild, DES-event and steering-message boundaries
//!   ([`ProbePoint`]).
//!
//! Determinism rules:
//! 1. A disabled handle ([`Telemetry::disabled`]) is an `Option::None`
//!    check on every operation — no allocation, no locking.
//! 2. Tracks are keyed by *logical* ids chosen by the caller (never
//!    thread ids) and merged in key order, so concurrent realizations
//!    export identically however the scheduler interleaved them.
//! 3. Exporters read a [`Snapshot`] whose ordering is fully determined
//!    by track keys and event append order.

pub mod export;
pub mod probe;
pub mod registry;
pub mod span;

pub use probe::{ProbePoint, ProbeSample};
pub use registry::{Counter, Gauge, Histogram, MetricValue, Registry};
pub use span::{intern, EventKind, SpanEvent, SpanGuard, Track, TrackSnapshot};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A cheap, cloneable handle to one telemetry domain. `disabled()` is
/// the zero-cost default; `enabled()` allocates the shared state.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    registry: Registry,
    tracks: Mutex<BTreeMap<(&'static str, u64), Arc<span::TrackState>>>,
    probes: probe::Probes,
}

/// Everything recorded so far, in deterministic order: tracks sorted by
/// `(name, key)`, metrics sorted by name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Span/instant event streams, one per track.
    pub tracks: Vec<TrackSnapshot>,
    /// Registry contents.
    pub metrics: Vec<(String, MetricValue)>,
}

impl Telemetry {
    /// The no-op handle: every call short-circuits on an `Option` check.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A live handle with its own registry, track set and probe table.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::default(),
                tracks: Mutex::new(BTreeMap::new()),
                probes: probe::Probes::new(),
            })),
        }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The central metric registry (None when disabled).
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Get-or-create a named counter. When disabled, returns a
    /// free-standing counter that still counts (callers keep their own
    /// arithmetic) but is not exported anywhere.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => Counter::default(),
        }
    }

    /// Register an existing counter handle under `name` so its live
    /// value exports with the registry. No-op when disabled.
    pub fn bind_counter(&self, name: &str, c: &Counter) {
        if let Some(i) = &self.inner {
            i.registry.bind_counter(name, c);
        }
    }

    /// Get-or-create a named gauge (free-standing when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Convenience: set gauge `name` to `v` (no-op when disabled).
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.gauge(name).set(v);
        }
    }

    /// Get-or-create a named histogram with the given upper bucket
    /// bounds (free-standing when disabled).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name, bounds),
            None => Histogram::with_bounds(bounds),
        }
    }

    /// Get-or-create the track `(name, key)`. Keys are *logical*
    /// identities (realization index, job id) — never thread ids — so
    /// the export order is scheduler-independent.
    pub fn track(&self, name: &'static str, key: u64) -> Track {
        match &self.inner {
            Some(i) => {
                let mut tracks = i.tracks.lock().expect("telemetry track table poisoned");
                let state = tracks
                    .entry((name, key))
                    .or_insert_with(|| Arc::new(span::TrackState::new(name, key)));
                Track::live(Arc::clone(state))
            }
            None => Track::disabled(),
        }
    }

    /// Install a sampling callback at `point`.
    pub fn on_probe<F>(&self, point: ProbePoint, f: F)
    where
        F: Fn(&ProbeSample) + Send + Sync + 'static,
    {
        if let Some(i) = &self.inner {
            i.probes.add(point, Box::new(f));
        }
    }

    /// Fire the probe at `point`. Cost when disabled: one `Option`
    /// check. Cost when enabled with no handler at `point`: one relaxed
    /// atomic load.
    #[inline]
    pub fn probe(&self, point: ProbePoint, logical: u64, value: f64) {
        if let Some(i) = &self.inner {
            i.probes.fire(&ProbeSample {
                point,
                logical,
                value,
            });
        }
    }

    /// Restore one exported metric value into this handle — the metric
    /// half of checkpoint restore. Counters and histograms *merge* (add
    /// onto whatever the handle already holds; a freshly `enabled()`
    /// handle holds zero, so the merge is an exact restore); gauges are
    /// last-value-wins and simply set. No-op when disabled.
    pub fn import_metric(&self, name: &str, value: &MetricValue) {
        if self.inner.is_none() {
            return;
        }
        match value {
            MetricValue::Counter(v) => self.counter(name).add(*v),
            MetricValue::Gauge(v) => self.set_gauge(name, *v),
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
            } => self.histogram(name, bounds).merge_counts(counts, *sum),
        }
    }

    /// Deterministic snapshot of every track and metric.
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(i) => {
                let tracks = i.tracks.lock().expect("telemetry track table poisoned");
                Snapshot {
                    tracks: tracks.values().map(|s| s.snapshot()).collect(),
                    metrics: i.registry.snapshot(),
                }
            }
            None => Snapshot {
                tracks: Vec::new(),
                metrics: Vec::new(),
            },
        }
    }

    /// Human-readable aggregated span tree + metric listing.
    pub fn summary_tree(&self) -> String {
        export::summary_tree(&self.snapshot())
    }

    /// JSON-lines event stream (one object per line).
    pub fn jsonl(&self) -> String {
        export::jsonl(&self.snapshot())
    }

    /// Chrome `chrome://tracing` / Perfetto JSON.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("x");
        c.add(3);
        assert_eq!(c.get(), 3, "free-standing counters still count");
        let snap = t.snapshot();
        assert!(snap.tracks.is_empty() && snap.metrics.is_empty());
        t.probe(ProbePoint::ForceEval, 0, 1.0);
        let track = t.track("t", 0);
        {
            let _g = track.span("s");
        }
        assert!(t.snapshot().tracks.is_empty());
    }

    #[test]
    fn track_identity_is_logical_not_callsite() {
        let t = Telemetry::enabled();
        let a = t.track("real", 3);
        let b = t.track("real", 3);
        a.tick(10);
        assert_eq!(b.clock(), 10, "same (name,key) is the same track");
    }

    #[test]
    fn tracks_export_in_key_order_regardless_of_creation_order() {
        let t = Telemetry::enabled();
        t.track("z", 2).instant("e", Vec::new());
        t.track("a", 9).instant("e", Vec::new());
        t.track("a", 1).instant("e", Vec::new());
        let names: Vec<(&str, u64)> = t
            .snapshot()
            .tracks
            .iter()
            .map(|tr| (tr.name, tr.key))
            .collect();
        assert_eq!(names, [("a", 1), ("a", 9), ("z", 2)]);
    }

    #[test]
    fn probes_fire_only_when_installed() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let t = Telemetry::enabled();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        t.on_probe(ProbePoint::DesEvent, move |s| {
            h.fetch_add(s.logical, Ordering::Relaxed);
        });
        t.probe(ProbePoint::DesEvent, 5, 0.0);
        t.probe(ProbePoint::ForceEval, 100, 0.0); // no handler at this point
        t.probe(ProbePoint::DesEvent, 7, 0.0);
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn import_metric_round_trips_every_metric_kind() {
        let a = Telemetry::enabled();
        a.counter("c").add(17);
        a.set_gauge("g", -2.5);
        let h = a.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 5.0, 99.0] {
            h.observe(v);
        }
        let snap = a.snapshot();

        let b = Telemetry::enabled();
        for (name, value) in &snap.metrics {
            b.import_metric(name, value);
        }
        assert_eq!(b.snapshot().metrics, snap.metrics);

        // Disabled handles ignore imports.
        let d = Telemetry::disabled();
        for (name, value) in &snap.metrics {
            d.import_metric(name, value);
        }
        assert!(d.snapshot().metrics.is_empty());
    }

    #[test]
    fn counter_binding_exports_live_values() {
        let t = Telemetry::enabled();
        let c = Counter::default();
        c.add(2);
        t.bind_counter("md.pairs", &c);
        c.add(3);
        let snap = t.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.metrics[0].0, "md.pairs");
        assert_eq!(snap.metrics[0].1, MetricValue::Counter(5));
    }
}
