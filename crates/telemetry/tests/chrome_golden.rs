//! Golden-file test: the Chrome-trace exporter must emit a byte-stable
//! artifact for a fixed event stream. Any format drift shows up as a
//! diff against `tests/golden/chrome_trace.json`.
//!
//! Gated on the default (no `timing`) build: with wall-clock capture on,
//! `ts` intentionally stops being reproducible.

#![cfg(not(feature = "timing"))]

use spice_telemetry::Telemetry;

fn fixed_stream() -> Telemetry {
    let t = Telemetry::enabled();
    let track = t.track("grid.job", 7);
    {
        let _attempt = track.span_at("attempt", 0);
        track.tick(3);
        track.instant("failure", vec![("kind", "node-crash".to_string())]);
        track.tick(10);
    }
    t.counter("grid.retries").add(2);
    t
}

#[test]
fn chrome_trace_matches_golden() {
    let got = fixed_stream().chrome_trace();
    let want = include_str!("golden/chrome_trace.json");
    assert_eq!(
        got, want,
        "chrome trace format drifted from the golden file"
    );
}

#[test]
fn chrome_trace_is_replay_stable() {
    assert_eq!(fixed_stream().chrome_trace(), fixed_stream().chrome_trace());
}
