//! Property test pinning the batched SoA ensemble to the cloned path:
//! for any master seed, decorrelation length, and replica count in
//! {1, 3, 64}, `run_ensemble_batched` must reproduce
//! `run_ensemble_cloned` *bitwise* — same per-replica seeds, same work
//! samples (time, guide/COM displacement, accumulated work, spring
//! force) down to the last f64 bit. This is the contract that lets
//! `core::pipeline::run_cell` switch paths on a pure throughput
//! heuristic without perturbing any published number.

use proptest::prelude::*;
use spice_md::forces::nonbonded::{LjParams, NonBonded};
use spice_md::forces::Restraint;
use spice_md::integrate::LangevinBaoab;
use spice_md::{ForceField, Simulation, System, Topology, Vec3};
use spice_smd::{run_ensemble_batched, run_ensemble_cloned, PullProtocol};
use spice_stats::rng::SeedSequence;

/// Single restrained bead — the minimal SMD system (cheapest, so the
/// 64-replica cases stay fast in debug builds).
fn bead_factory(seed: u64) -> Simulation {
    let mut sys = System::new();
    sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
    let mut topo = Topology::new();
    topo.set_group("smd", vec![0]);
    let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 0.5));
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
        0.02,
    )
}

/// Bonded dimer with WCA non-bonded — exercises the shared pair list
/// and bonded gather/scatter inside the batched pull.
fn dimer_factory(seed: u64) -> Simulation {
    let mut sys = System::new();
    sys.add_particle(Vec3::new(0.0, 0.0, 0.0), 30.0, 0.0, 0);
    sys.add_particle(Vec3::new(1.2, 0.1, -0.1), 30.0, 0.0, 0);
    let mut topo = Topology::new();
    topo.add_harmonic_bond(0, 1, 1.2, 25.0);
    topo.set_group("smd", vec![0, 1]);
    let ff = ForceField::new(topo)
        .with_nonbonded(NonBonded::new(LjParams::wca(0.9, 0.6), 4.0, 0.4))
        .with_restraint(Restraint::harmonic(0, Vec3::zero(), 1.0));
    Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(310.0, 4.0, seed)),
        0.02,
    )
}

fn proto() -> PullProtocol {
    PullProtocol {
        kappa_pn_per_a: 300.0,
        v_a_per_ns: 2000.0,
        pull_distance: 2.0,
        dt_ps: 0.02,
        equilibration_steps: 100,
        sample_stride: 10,
    }
}

fn assert_bitwise_equal(
    factory: fn(u64) -> Simulation,
    n: usize,
    master: u64,
    decorr: u64,
) -> Result<(), TestCaseError> {
    let cloned = run_ensemble_cloned(factory, &proto(), n, SeedSequence::new(master), decorr);
    let batched = run_ensemble_batched(factory, &proto(), n, SeedSequence::new(master), decorr);
    prop_assert_eq!(batched.len(), cloned.len());
    for (l, (b, c)) in batched.iter().zip(&cloned).enumerate() {
        let b = match b {
            Ok(t) => t,
            Err(e) => return Err(TestCaseError::fail(format!("batched lane {l} failed: {e}"))),
        };
        let c = match c {
            Ok(t) => t,
            Err(e) => return Err(TestCaseError::fail(format!("cloned lane {l} failed: {e}"))),
        };
        prop_assert_eq!(b.seed, c.seed, "replica {} seed", l);
        prop_assert_eq!(
            b.kappa_pn_per_a.to_bits(),
            c.kappa_pn_per_a.to_bits(),
            "replica {} kappa",
            l
        );
        // WorkSample derives PartialEq over raw f64 fields, so this is a
        // bitwise comparison of every (t, guide, com, work, force) tuple.
        prop_assert_eq!(&b.samples, &c.samples, "replica {} work samples", l);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// ISSUE 10 gate: batched == cloned bit-identical across replica
    /// counts {1, 3, 64} × random master seeds × decorrelation lengths.
    #[test]
    fn batched_equals_cloned_bitwise(master in 1u64..1_000_000, decorr in 10u64..60) {
        for &n in &[1usize, 3, 64] {
            assert_bitwise_equal(bead_factory, n, master, decorr)?;
        }
        // The interacting fixture is pricier; pin the small counts.
        for &n in &[1usize, 3] {
            assert_bitwise_equal(dimer_factory, n, master, decorr)?;
        }
    }
}
