//! Pulling protocols in the paper's units.
//!
//! §IV sweeps κ ∈ {10, 100, 1000} pN/Å and v ∈ {12.5, 25, 50, 100} Å/ns
//! over a 10 Å sub-trajectory near the pore center. A protocol captures
//! one (κ, v) cell of that sweep plus the integration settings.

use serde::{Deserialize, Serialize};
use spice_md::units;

/// One constant-velocity pulling protocol.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct PullProtocol {
    /// Spring constant in the paper's units (pN/Å).
    pub kappa_pn_per_a: f64,
    /// Pulling velocity in the paper's units (Å/ns). Positive pulls
    /// toward +z.
    pub v_a_per_ns: f64,
    /// Total guide displacement (Å) — the paper's 10 Å sub-trajectory.
    pub pull_distance: f64,
    /// MD time step (ps).
    pub dt_ps: f64,
    /// Equilibration steps before the guide starts moving (spring held
    /// static at the start position).
    pub equilibration_steps: u64,
    /// Record a work sample every this many steps.
    pub sample_stride: u64,
}

impl Default for PullProtocol {
    fn default() -> Self {
        Self::paper_optimal()
    }
}

impl PullProtocol {
    /// The paper's optimal parameters: κ = 100 pN/Å, v = 12.5 Å/ns
    /// (§IV conclusion).
    pub fn paper_optimal() -> Self {
        PullProtocol {
            kappa_pn_per_a: 100.0,
            v_a_per_ns: 12.5,
            pull_distance: 10.0,
            dt_ps: 0.02,
            equilibration_steps: 2_000,
            sample_stride: 25,
        }
    }

    /// A protocol for one cell of the Fig. 4 sweep.
    pub fn sweep_cell(kappa_pn_per_a: f64, v_a_per_ns: f64) -> Self {
        PullProtocol {
            kappa_pn_per_a,
            v_a_per_ns,
            ..Self::paper_optimal()
        }
    }

    /// The paper's κ grid (pN/Å).
    pub const KAPPA_GRID: [f64; 3] = [10.0, 100.0, 1000.0];

    /// The paper's v grid (Å/ns).
    pub const V_GRID: [f64; 4] = [12.5, 25.0, 50.0, 100.0];

    /// Spring constant in engine units (kcal mol⁻¹ Å⁻²).
    pub fn kappa(&self) -> f64 {
        units::spring_pn_per_a_to_kcal(self.kappa_pn_per_a)
    }

    /// Velocity in engine units (Å/ps).
    pub fn velocity(&self) -> f64 {
        units::velocity_a_per_ns_to_a_per_ps(self.v_a_per_ns)
    }

    /// Number of pulling steps to cover `pull_distance`.
    pub fn pull_steps(&self) -> u64 {
        (self.pull_distance / (self.velocity().abs() * self.dt_ps)).ceil() as u64
    }

    /// Wall-model cost of one realization, in MD steps — the quantity the
    /// paper's §IV-C cost normalization is based on (cost ∝ 1/v).
    pub fn cost_steps(&self) -> u64 {
        self.equilibration_steps + self.pull_steps()
    }

    /// How many realizations of this protocol fit in the compute budget of
    /// one realization of `reference` (the paper: "In the computational
    /// time that one sample at v = 12.5 Å/ns can be generated, eight
    /// samples at v = 100 Å/ns can be generated").
    pub fn samples_per_reference_cost(&self, reference: &PullProtocol) -> f64 {
        reference.pull_steps() as f64 / self.pull_steps() as f64
    }

    /// Basic sanity checks.
    ///
    /// # Panics
    /// Panics on non-physical settings.
    pub fn validate(&self) {
        assert!(self.kappa_pn_per_a > 0.0, "κ must be positive");
        // spice-lint: allow(N002) exact zero is precisely the invalid velocity being rejected
        assert!(self.v_a_per_ns != 0.0, "pulling velocity must be non-zero");
        assert!(self.pull_distance > 0.0, "pull distance must be positive");
        assert!(self.dt_ps > 0.0, "dt must be positive");
        assert!(self.sample_stride > 0, "sample stride must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimal_matches_section_iv() {
        let p = PullProtocol::paper_optimal();
        assert_eq!(p.kappa_pn_per_a, 100.0);
        assert_eq!(p.v_a_per_ns, 12.5);
        assert_eq!(p.pull_distance, 10.0);
    }

    #[test]
    fn unit_conversions() {
        let p = PullProtocol::paper_optimal();
        assert!((p.kappa() - 100.0 / 69.477).abs() < 1e-9);
        assert!((p.velocity() - 0.0125).abs() < 1e-15);
    }

    #[test]
    fn pull_steps_cover_distance() {
        let p = PullProtocol::paper_optimal();
        // 10 Å at 0.0125 Å/ps with dt = 0.02 ps → 40 000 steps.
        assert_eq!(p.pull_steps(), 40_000);
    }

    #[test]
    fn cost_normalization_matches_paper_claim() {
        // Eight v=100 samples per one v=12.5 sample (§IV-C).
        let slow = PullProtocol::sweep_cell(100.0, 12.5);
        let fast = PullProtocol::sweep_cell(100.0, 100.0);
        let ratio = fast.samples_per_reference_cost(&slow);
        assert!((ratio - 8.0).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn grids_match_figure_4() {
        assert_eq!(PullProtocol::KAPPA_GRID, [10.0, 100.0, 1000.0]);
        assert_eq!(PullProtocol::V_GRID, [12.5, 25.0, 50.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "velocity must be non-zero")]
    fn zero_velocity_rejected() {
        let p = PullProtocol {
            v_a_per_ns: 0.0,
            ..PullProtocol::paper_optimal()
        };
        p.validate();
    }
}
