//! Runtime simulation sanitizer for the SMD layer (the `audit` feature).
//!
//! The pull loop is the boundary where MD state becomes thermodynamic
//! data: a non-finite spring force or work integral here silently poisons
//! every downstream Jarzynski average. With `--features audit` each pull
//! step asserts both stay finite; without it the check does not exist.

/// Assert the running work integral and spring force are finite. Invoked
/// by [`crate::runner::pull_from`] after every pull step; also callable
/// directly (injection tests drive it with NaN).
pub fn check_finite_work(work: f64, force: f64, step: u64) {
    if !(work.is_finite() && force.is_finite()) {
        // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
        panic!(
            "spice-audit[smd.finite_work]: work {work} or spring force \
             {force} non-finite at pull step {step}"
        );
    }
}
