//! The SMD pulling spring.
//!
//! `U(t) = κ/2 (z_com − z_guide(t))²` with `z_guide(t) = z₀ + v (t − t₀)`.
//! The restoring force is distributed over the SMD atoms mass-weighted,
//! so it acts on their center of mass exactly — NAMD's SMD convention.

use spice_md::{BiasForce, Vec3};

/// Constant-velocity harmonic pulling of a group's COM along z.
#[derive(Debug, Clone)]
pub struct SmdSpring {
    /// SMD atom indices.
    group: Vec<usize>,
    /// Mass fraction mᵢ/M per group atom (precomputed).
    mass_frac: Vec<f64>,
    /// Spring constant κ (kcal mol⁻¹ Å⁻²).
    kappa: f64,
    /// Pulling velocity (Å/ps); sign sets direction along z.
    velocity: f64,
    /// Guide position at `t_start`.
    z_start: f64,
    /// Simulation time at which the pull begins (ps).
    t_start: f64,
}

impl SmdSpring {
    /// Attach a spring to `group` (with the given masses) starting from
    /// guide position `z_start` at simulation time `t_start`.
    ///
    /// # Panics
    /// Panics for an empty group or non-positive κ.
    pub fn new(
        group: Vec<usize>,
        masses: &[f64],
        kappa: f64,
        velocity: f64,
        z_start: f64,
        t_start: f64,
    ) -> Self {
        assert!(!group.is_empty(), "SMD group must be non-empty");
        assert!(kappa > 0.0, "spring constant must be positive");
        let total: f64 = group.iter().map(|&i| masses[i]).sum();
        let mass_frac = group.iter().map(|&i| masses[i] / total).collect();
        SmdSpring {
            group,
            mass_frac,
            kappa,
            velocity,
            z_start,
            t_start,
        }
    }

    /// Guide (pulling-atom) position at simulation time `t_ps`.
    #[inline]
    pub fn guide_z(&self, t_ps: f64) -> f64 {
        self.z_start + self.velocity * (t_ps - self.t_start)
    }

    /// Guide displacement since the pull began.
    #[inline]
    pub fn guide_displacement(&self, t_ps: f64) -> f64 {
        self.velocity * (t_ps - self.t_start)
    }

    /// COM z of the SMD atoms for the given positions.
    pub fn com_z(&self, positions: &[Vec3]) -> f64 {
        self.group
            .iter()
            .zip(&self.mass_frac)
            .map(|(&i, &w)| w * positions[i].z)
            .sum()
    }

    /// Spring force on the system along +z (what the paper's force plots
    /// show): `F = κ (z_guide − z_com)`.
    pub fn spring_force(&self, positions: &[Vec3], t_ps: f64) -> f64 {
        self.kappa * (self.guide_z(t_ps) - self.com_z(positions))
    }

    /// Spring constant (kcal mol⁻¹ Å⁻²).
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Pulling velocity (Å/ps).
    pub fn velocity(&self) -> f64 {
        self.velocity
    }

    /// The SMD atom indices.
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// Precomputed mass fractions, aligned with [`group`](Self::group)
    /// (the batched engine replicates the COM fold per replica lane).
    pub(crate) fn mass_frac(&self) -> &[f64] {
        &self.mass_frac
    }
}

impl BiasForce for SmdSpring {
    fn apply(&self, positions: &[Vec3], forces: &mut [Vec3], t_ps: f64) -> f64 {
        let dz = self.com_z(positions) - self.guide_z(t_ps);
        // U = κ/2 dz² ; F_i = -κ dz · mᵢ/M along z.
        let f_com = -self.kappa * dz;
        for (&i, &w) in self.group.iter().zip(&self.mass_frac) {
            forces[i].z += f_com * w;
        }
        0.5 * self.kappa * dz * dz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(zs: &[f64]) -> Vec<Vec3> {
        zs.iter().map(|&z| Vec3::new(0.0, 0.0, z)).collect()
    }

    #[test]
    fn guide_moves_linearly() {
        let s = SmdSpring::new(vec![0], &[1.0], 1.0, 0.5, 10.0, 2.0);
        assert_eq!(s.guide_z(2.0), 10.0);
        assert_eq!(s.guide_z(4.0), 11.0);
        assert_eq!(s.guide_displacement(6.0), 2.0);
    }

    #[test]
    fn com_is_mass_weighted() {
        let s = SmdSpring::new(vec![0, 1], &[1.0, 3.0], 1.0, 0.0, 0.0, 0.0);
        let pos = positions(&[0.0, 4.0]);
        assert!((s.com_z(&pos) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn force_distributed_by_mass_and_totals_correctly() {
        let kappa = 2.0;
        let s = SmdSpring::new(vec![0, 1], &[1.0, 3.0], kappa, 0.0, 5.0, 0.0);
        let pos = positions(&[0.0, 4.0]); // com = 3, guide = 5 → F_com = +4
        let mut f = vec![Vec3::zero(); 2];
        let e = s.apply(&pos, &mut f, 0.0);
        let total_fz = f[0].z + f[1].z;
        assert!((total_fz - kappa * 2.0).abs() < 1e-12, "total {total_fz}");
        assert!((f[1].z / f[0].z - 3.0).abs() < 1e-12, "mass-weighted split");
        assert!((e - 0.5 * kappa * 4.0).abs() < 1e-12);
        // Matches the reported spring force.
        assert!((s.spring_force(&pos, 0.0) - total_fz).abs() < 1e-12);
    }

    #[test]
    fn spring_relaxed_when_com_on_guide() {
        let s = SmdSpring::new(vec![0], &[2.0], 10.0, 1.0, 0.0, 0.0);
        let pos = positions(&[3.0]);
        let mut f = vec![Vec3::zero(); 1];
        let e = s.apply(&pos, &mut f, 3.0); // guide at 3.0 = com
        assert!(e.abs() < 1e-12);
        assert!(f[0].z.abs() < 1e-12);
    }

    #[test]
    fn negative_velocity_pulls_down() {
        let s = SmdSpring::new(vec![0], &[1.0], 5.0, -1.0, 0.0, 0.0);
        let pos = positions(&[0.0]);
        let mut f = vec![Vec3::zero(); 1];
        s.apply(&pos, &mut f, 2.0); // guide at -2
        assert!(f[0].z < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_group_rejected() {
        SmdSpring::new(vec![], &[], 1.0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn only_z_components_touched() {
        let s = SmdSpring::new(vec![0], &[1.0], 5.0, 0.0, 10.0, 0.0);
        let pos = vec![Vec3::new(1.0, 2.0, 3.0)];
        let mut f = vec![Vec3::new(0.1, 0.2, 0.3)];
        s.apply(&pos, &mut f, 0.0);
        assert_eq!(f[0].x, 0.1);
        assert_eq!(f[0].y, 0.2);
        assert!(f[0].z > 0.3, "z pulled up toward guide");
    }
}
