//! # spice-smd
//!
//! Steered Molecular Dynamics: the non-equilibrium pulling half of the
//! paper's SMD-JE method (§II).
//!
//! A fictitious *pulling atom* moves along the pore axis at constant
//! velocity v; the *SMD atoms* (a named group) are coupled to it by a
//! harmonic spring of constant κ. The external work done by the moving
//! guide is accumulated along each realization; `spice-jarzynski` turns
//! ensembles of work trajectories into equilibrium free-energy profiles.
//!
//! * [`pulling`] — the [`SmdSpring`] bias force (mass-weighted COM
//!   coupling, exactly NAMD's SMD).
//! * [`protocol`] — pulling protocols in the paper's units (κ in pN/Å,
//!   v in Å/ns), the 10 Å sub-trajectory, equilibration settings.
//! * [`work`] — work trajectories: time series of (guide displacement,
//!   COM displacement, accumulated work), with sub-trajectory
//!   segmentation (§IV-A).
//! * [`runner`] — drive one realization: equilibrate, attach the spring,
//!   pull, record.
//! * [`ensemble`] — rayon-parallel ensembles of independent realizations,
//!   the in-process analogue of the paper's 72-simulation grid campaign.

#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod batch;
pub mod ensemble;
pub mod protocol;
pub mod pulling;
pub mod runner;
pub mod work;

pub use batch::{run_ensemble_batched, run_ensemble_batched_traced};
pub use ensemble::{
    partition_outcomes, run_ensemble, run_ensemble_cloned, run_ensemble_cloned_traced,
    run_ensemble_with_progress,
};
pub use protocol::PullProtocol;
pub use pulling::SmdSpring;
pub use runner::{anchor_and_hold, pull_from, run_pull, run_reverse_pull, PullOutcome};
pub use work::{segment_trajectory, WorkSample, WorkTrajectory};
