//! Batched ensembles: advance every cloned realization through one
//! vectorized force/integrate loop.
//!
//! [`run_ensemble_batched`] is a drop-in replacement for
//! [`run_ensemble_cloned`](crate::ensemble::run_ensemble_cloned): same
//! master equilibration, same seeds, same per-replica decorrelation and
//! pull — and *bit-identical* work trajectories (property-tested in
//! `tests/batch_equivalence.rs`). The difference is purely mechanical:
//! instead of R independent [`Simulation`]s stepped on separate rayon
//! tasks, the replicas become R lanes of one [`BatchSim`] whose SoA
//! kernels sweep all lanes per pair/particle (see `spice_md::batch`).
//!
//! Per-replica state the cloned path keeps inside `SmdSpring`/`pull_from`
//! locals — COM origin, trapezoid work accumulator, previous spring
//! force, sample buffer — lives here in per-lane vectors, updated with
//! the exact expressions the scalar path evaluates.
//!
//! Failure semantics mirror the cloned path slot-for-slot: a replica
//! whose state goes non-finite gets the same `MdError` in its result
//! slot (detected on the same step, with the same message) while the
//! remaining lanes continue unperturbed; the failed lane is excluded
//! from neighbor-list rebuilds from that point on.
//!
//! Batched runs require every replica's integrator to be BAOAB Langevin
//! (the only stochastic state the lane kernels replicate). When
//! `factory` produces anything else the call transparently falls back to
//! the cloned path.

use crate::ensemble::run_ensemble_cloned_traced;
use crate::protocol::PullProtocol;
use crate::pulling::SmdSpring;
use crate::runner::anchor_and_hold;
use crate::work::{WorkSample, WorkTrajectory};
use spice_md::batch::{BatchSim, LaneForces, LaneThermostat};
use spice_md::checkpoint::Snapshot;
use spice_md::{MdError, Simulation};
use spice_stats::rng::SeedSequence;
use spice_telemetry::Telemetry;

/// How often (in MD steps) the `audit` feature replays lanes against
/// scalar shadow simulations.
#[cfg(feature = "audit")]
const AUDIT_REPLAY_STRIDE: u64 = 64;

/// [`run_ensemble_cloned`](crate::ensemble::run_ensemble_cloned) through
/// the batched SoA engine: one shared equilibration, then all `n`
/// realizations advanced in lockstep by a single vectorized loop.
///
/// Bit-identical to the cloned path for every seed (slot `i` carries the
/// same `WorkTrajectory` or the same error). Falls back to the cloned
/// path when the factory's integrator is not BAOAB Langevin.
pub fn run_ensemble_batched<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
    decorrelation_steps: u64,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    run_ensemble_batched_traced(
        factory,
        protocol,
        n,
        seeds,
        decorrelation_steps,
        &Telemetry::disabled(),
        0,
    )
}

/// [`run_ensemble_batched`] with telemetry attached.
///
/// Emits the same `smd.equilibrate` span as the cloned path, one
/// `batch.realization` span per lane on its `("smd.realization", i)`
/// track, an `smd.batch.replicas` gauge, and an `smd.batch.rebuilds`
/// counter for the shared pair list. Per-step MD probes are not emitted
/// — the batched loop has no per-replica force evaluations to probe;
/// replica-grain timing comes from the lane spans instead.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_batched_traced<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
    decorrelation_steps: u64,
    telemetry: &Telemetry,
    track_key: u64,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    protocol.validate();
    if n == 0 {
        return Vec::new();
    }

    // One factory call per realization, exactly as the cloned path makes:
    // lane i's thermostat is whatever `factory(seeds.stream(i))` installs.
    // Any non-Langevin integrator defeats lane replication — fall back.
    let mut lane_sims: Vec<Simulation> = (0..n).map(|i| factory(seeds.stream(i as u64))).collect();
    let lanes: Option<Vec<LaneThermostat>> = lane_sims
        .iter()
        .map(|s| {
            s.langevin_params()
                .map(|(temperature, gamma, noise_seed)| LaneThermostat {
                    temperature,
                    gamma,
                    noise_seed,
                })
        })
        .collect();
    let Some(lanes) = lanes else {
        drop(lane_sims);
        return run_ensemble_cloned_traced(
            factory,
            protocol,
            n,
            seeds,
            decorrelation_steps,
            telemetry,
            track_key,
        );
    };

    // Shared equilibration: identical to the cloned path (same master
    // seed, same span, same error fan-out on failure).
    let master_seed = seeds.child(u64::MAX).stream(0);
    let ens_track = telemetry.track("smd.ensemble", track_key);
    let master = (|| -> Result<Snapshot, MdError> {
        let _span = ens_track.span("smd.equilibrate");
        let mut sim = factory(master_seed);
        if telemetry.is_enabled() {
            sim.attach_telemetry(telemetry, ens_track.clone());
        }
        anchor_and_hold(&mut sim, protocol, protocol.equilibration_steps)?;
        let snap = Snapshot::capture(&sim, "shared-equilibration");
        if telemetry.is_enabled() {
            sim.kernel_counters().publish(telemetry);
        }
        Ok(snap)
    })();
    let snap = match master {
        Ok(snap) => snap,
        Err(e) => {
            let msg = format!("shared equilibration failed: {e}");
            return (0..n)
                .map(|_| Err(MdError::Checkpoint(msg.clone())))
                .collect();
        }
    };

    // Lane 0's simulation doubles as the restore template — the same
    // `factory(seed) → restore` every clone performs.
    let mut template = lane_sims.swap_remove(0);
    drop(lane_sims);
    if let Err(e) = snap.restore(&mut template) {
        // Every clone would hit the identical incompatibility; restore is
        // deterministic, so fail each remaining slot the same way.
        let msg = format!("{e}");
        return std::iter::once(Err(e))
            .chain((1..n).map(|_| Err(MdError::Checkpoint(msg.clone()))))
            .collect();
    }

    // Group resolution fails identically for every clone too; produce one
    // fresh (equal) error per slot.
    let group = match template.force_field().topology().group("smd") {
        Ok(g) => g.to_vec(),
        Err(_) => {
            return (0..n)
                .map(|_| match template.force_field().topology().group("smd") {
                    Ok(_) => unreachable!("group lookup cannot succeed after failing"),
                    Err(e) => Err(e),
                })
                .collect();
        }
    };
    let masses = template.system().masses().to_vec();

    // Anchor COM exactly as `anchor_and_hold` computes it. All lanes
    // restore to identical coordinates, so one value serves every lane.
    let probe = SmdSpring::new(group.clone(), &masses, protocol.kappa(), 0.0, 0.0, 0.0);
    let com0 = probe.com_z(template.system().positions());
    let hold = SmdSpring::new(group.clone(), &masses, protocol.kappa(), 0.0, com0, 0.0);

    let mut batch = BatchSim::new(template, &lanes);
    telemetry.set_gauge("smd.batch.replicas", n as f64);
    // Keep each lane's realization span open for the whole batched run:
    // lanes advance in lockstep, so per-lane wall time is the batch's.
    let lane_spans: Vec<_> = (0..n)
        .map(|i| {
            telemetry
                .track("smd.realization", i as u64)
                .span("batch.realization")
        })
        .collect();

    let mut failed: Vec<Option<MdError>> = (0..n).map(|_| None).collect();
    #[cfg(feature = "audit")]
    let mut shadows = Shadows::new(&factory, seeds, n, &snap, &hold);

    // Post-clone decorrelation: held spring, per-lane noise streams. The
    // cloned path's `sim.run(steps)` health-checks every
    // `blowup_check_stride = 100` *global* steps.
    let mut hold_bias = batch_spring_bias(&hold);
    batch.refresh_forces(&mut hold_bias);
    for _ in 0..decorrelation_steps {
        batch.step_once(&mut hold_bias);
        #[cfg(feature = "audit")]
        shadows.step_and_check(&batch, &failed);
        if batch.step_count().is_multiple_of(100) {
            check_hold_blowup(&mut batch, &mut failed);
        }
    }
    drop(hold_bias);

    // Pull phase: guide moves at constant v from the shared anchor; each
    // lane integrates its own trapezoid work from its own COM excursion.
    let spring = SmdSpring::new(
        group,
        &masses,
        protocol.kappa(),
        protocol.velocity(),
        com0,
        batch.time_ps(),
    );
    #[cfg(feature = "audit")]
    shadows.set_bias(&spring, &failed);
    #[cfg(feature = "audit")]
    let results = pull_lanes(&mut batch, &spring, protocol, seeds, failed, &mut shadows);
    #[cfg(not(feature = "audit"))]
    let results = pull_lanes(&mut batch, &spring, protocol, seeds, failed);

    telemetry
        .counter("smd.batch.rebuilds")
        .add(batch.rebuild_count());
    drop(lane_spans);
    results
}

/// Build the batched bias closure for one spring: the exact per-lane
/// replica of [`SmdSpring::apply`] (same COM fold, same force split).
fn batch_spring_bias(spring: &SmdSpring) -> impl FnMut(f64, &mut LaneForces<'_>) {
    let spring = spring.clone();
    move |t_ps: f64, lf: &mut LaneForces<'_>| {
        let guide = spring.guide_z(t_ps);
        for l in 0..lf.n_lanes() {
            let dz = lane_com_z(&spring, lf, l) - guide;
            let f_com = -spring.kappa() * dz;
            for (&i, &w) in spring.group().iter().zip(spring.mass_frac()) {
                lf.add_force_z(i, l, f_com * w);
            }
        }
    }
}

/// Lane-`l` COM of the spring's group: the same mass-fraction fold as
/// [`SmdSpring::com_z`] (iteration order and `Sum` seed included).
fn lane_com_z(spring: &SmdSpring, lf: &LaneForces<'_>, l: usize) -> f64 {
    spring
        .group()
        .iter()
        .zip(spring.mass_frac())
        .map(|(&i, &w)| w * lf.pos_z(i, l))
        .sum()
}

/// Same fold reading directly from a [`BatchSim`] (outside a force eval).
fn lane_com_z_sim(spring: &SmdSpring, batch: &BatchSim, l: usize) -> f64 {
    spring
        .group()
        .iter()
        .zip(spring.mass_frac())
        .map(|(&i, &w)| w * batch.pos_z(i, l))
        .sum()
}

/// The hold-phase health check `Simulation::run` performs every
/// `blowup_check_stride` steps, applied per lane.
fn check_hold_blowup(batch: &mut BatchSim, failed: &mut [Option<MdError>]) {
    for (l, slot) in failed.iter_mut().enumerate() {
        if slot.is_none() && !batch.lane_is_finite(l) {
            *slot = Some(MdError::NumericalBlowup {
                step: batch.step_count(),
                what: "non-finite coordinate or velocity".into(),
            });
            batch.mark_dead(l);
        }
    }
}

/// The pull loop of `runner::pull_from`, fanned across lanes: one
/// `step_once` per step for the whole batch, then per-lane work/sample
/// updates with the scalar path's exact expressions and check order.
fn pull_lanes(
    batch: &mut BatchSim,
    spring: &SmdSpring,
    protocol: &PullProtocol,
    seeds: SeedSequence,
    mut failed: Vec<Option<MdError>>,
    #[cfg(feature = "audit")] shadows: &mut Shadows,
) -> Vec<Result<WorkTrajectory, MdError>> {
    let n = batch.n_lanes();
    let t0 = batch.time_ps();
    let dt = batch.dt();
    let v = protocol.velocity();
    let nsteps = protocol.pull_steps();
    let cap = (nsteps / protocol.sample_stride) as usize + 2;

    let mut com_start = vec![0.0; n];
    let mut work = vec![0.0; n];
    let mut prev_force = vec![0.0; n];
    let mut samples: Vec<Vec<WorkSample>> = (0..n).map(|_| Vec::with_capacity(cap)).collect();
    for l in 0..n {
        com_start[l] = lane_com_z_sim(spring, batch, l);
        prev_force[l] = spring.kappa() * (spring.guide_z(t0) - lane_com_z_sim(spring, batch, l));
        samples[l].push(WorkSample {
            t_ps: 0.0,
            guide_disp: 0.0,
            com_disp: 0.0,
            work: 0.0,
            force: prev_force[l],
        });
    }

    let mut bias = batch_spring_bias(spring);
    batch.refresh_forces(&mut bias);
    for step in 1..=nsteps {
        batch.step_once(&mut bias);
        #[cfg(feature = "audit")]
        shadows.step_and_check(batch, &failed);
        let t = batch.time_ps();
        for l in 0..n {
            if failed[l].is_some() {
                continue;
            }
            let force = spring.kappa() * (spring.guide_z(t) - lane_com_z_sim(spring, batch, l));
            // Trapezoid: dW = v · (F_prev + F)/2 · dt.
            work[l] += v * 0.5 * (prev_force[l] + force) * dt;
            prev_force[l] = force;
            // Under `audit`, the cloned path's per-step sanitizer panic is
            // caught per realization task; the per-lane analogue converts
            // the would-be panic into that slot's error so sibling lanes
            // survive, exactly as sibling tasks do.
            #[cfg(feature = "audit")]
            if !(work[l].is_finite() && force.is_finite()) {
                let seed = seeds.stream(l as u64);
                failed[l] = Some(MdError::NumericalBlowup {
                    step: 0,
                    what: format!("cloned realization {l} (seed {seed}) panicked"),
                });
                batch.mark_dead(l);
                continue;
            }
            if step % protocol.sample_stride == 0 || step == nsteps {
                samples[l].push(WorkSample {
                    t_ps: t - t0,
                    guide_disp: v * (t - t0),
                    com_disp: lane_com_z_sim(spring, batch, l) - com_start[l],
                    work: work[l],
                    force,
                });
            }
            if step % 200 == 0 && !batch.lane_is_finite(l) {
                failed[l] = Some(MdError::NumericalBlowup {
                    step: batch.step_count(),
                    what: "non-finite state during pull".into(),
                });
                batch.mark_dead(l);
            }
        }
    }

    samples
        .into_iter()
        .enumerate()
        .map(|(l, s)| match failed[l].take() {
            Some(e) => Err(e),
            None => Ok(WorkTrajectory {
                kappa_pn_per_a: protocol.kappa_pn_per_a,
                v_a_per_ns: protocol.v_a_per_ns,
                seed: seeds.stream(l as u64),
                samples: s,
            }),
        })
        .collect()
}

/// Scalar shadow replays for the `audit` feature: the first and last
/// lanes are re-run as ordinary cloned `Simulation`s in lockstep with the
/// batch, and their full state is compared bitwise every
/// [`AUDIT_REPLAY_STRIDE`] steps. Any SoA-kernel divergence — layout bug,
/// reordered reduction, contracted FMA — trips the sanitizer.
#[cfg(feature = "audit")]
struct Shadows {
    replays: Vec<(usize, Simulation)>,
}

#[cfg(feature = "audit")]
impl Shadows {
    fn new<F>(factory: &F, seeds: SeedSequence, n: usize, snap: &Snapshot, hold: &SmdSpring) -> Self
    where
        F: Fn(u64) -> Simulation + Sync,
    {
        let mut lanes = vec![0];
        if n > 1 {
            lanes.push(n - 1);
        }
        let replays = lanes
            .into_iter()
            .map(|l| {
                let mut sim = factory(seeds.stream(l as u64));
                snap.restore(&mut sim)
                    .expect("audit shadow restore must succeed after batch restore did");
                sim.set_bias(Some(Box::new(hold.clone())));
                (l, sim)
            })
            .collect();
        Shadows { replays }
    }

    fn set_bias(&mut self, spring: &SmdSpring, failed: &[Option<MdError>]) {
        self.replays.retain(|(l, _)| failed[*l].is_none());
        for (_, sim) in &mut self.replays {
            // spice-lint: allow(P003) audit-only setup: one bias clone per ≤2 shadow lanes, once per pull, never the per-step kernel loop
            sim.set_bias(Some(Box::new(spring.clone())));
        }
    }

    fn step_and_check(&mut self, batch: &BatchSim, failed: &[Option<MdError>]) {
        // A failed lane's garbage no longer has a meaningful twin.
        self.replays.retain(|(l, _)| failed[*l].is_none());
        for (l, sim) in &mut self.replays {
            sim.step_once();
            if sim.step_count() % AUDIT_REPLAY_STRIDE != 0 {
                continue;
            }
            for i in 0..sim.system().len() {
                let (bp, bv) = (batch.pos(i, *l), batch.vel(i, *l));
                let (sp, sv) = (sim.system().positions()[i], sim.system().velocities()[i]);
                if bp != sp || bv != sv {
                    // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
                    panic!(
                        "spice-audit[smd.batch_lanes]: lane {l} diverged from scalar \
                         replay at step {} particle {i}: batch ({bp:?}, {bv:?}) vs \
                         scalar ({sp:?}, {sv:?})",
                        sim.step_count()
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{run_ensemble_cloned, successes};
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::integrate::{LangevinBaoab, VelocityVerlet};
    use spice_md::{System, Topology, Vec3};

    fn factory(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.set_group("smd", vec![0]);
        let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 0.5));
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
            0.02,
        )
    }

    fn nve_factory(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.set_group("smd", vec![0]);
        let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 0.5));
        let _ = seed;
        Simulation::new(sys, ff, Box::new(VelocityVerlet), 0.02)
    }

    fn proto() -> PullProtocol {
        PullProtocol {
            kappa_pn_per_a: 300.0,
            v_a_per_ns: 2000.0,
            pull_distance: 2.0,
            dt_ps: 0.02,
            equilibration_steps: 100,
            sample_stride: 10,
        }
    }

    #[test]
    fn batched_matches_cloned_bitwise() {
        let seeds = SeedSequence::new(11);
        let cloned = run_ensemble_cloned(factory, &proto(), 5, seeds, 40);
        let batched = run_ensemble_batched(factory, &proto(), 5, seeds, 40);
        assert_eq!(batched.len(), cloned.len());
        for (b, c) in batched.iter().zip(&cloned) {
            let (b, c) = (b.as_ref().unwrap(), c.as_ref().unwrap());
            assert_eq!(b.seed, c.seed);
            assert_eq!(b.samples, c.samples, "bitwise sample equality");
        }
    }

    #[test]
    fn batched_zero_realizations_is_empty() {
        assert!(run_ensemble_batched(factory, &proto(), 0, SeedSequence::new(1), 10).is_empty());
    }

    #[test]
    fn batched_realizations_diverge_by_seed() {
        let trajs = successes(run_ensemble_batched(
            factory,
            &proto(),
            5,
            SeedSequence::new(12),
            40,
        ));
        assert_eq!(trajs.len(), 5);
        let works: Vec<f64> = trajs.iter().map(|t| t.final_work()).collect();
        for i in 0..works.len() {
            for j in (i + 1)..works.len() {
                assert_ne!(works[i], works[j], "lanes must diverge by seed");
            }
        }
    }

    #[test]
    fn non_langevin_factory_falls_back_to_cloned() {
        let batched = run_ensemble_batched(nve_factory, &proto(), 3, SeedSequence::new(9), 20);
        let cloned = run_ensemble_cloned(nve_factory, &proto(), 3, SeedSequence::new(9), 20);
        let wb: Vec<f64> = successes(batched).iter().map(|t| t.final_work()).collect();
        let wc: Vec<f64> = successes(cloned).iter().map(|t| t.final_work()).collect();
        assert_eq!(wb, wc);
    }

    #[test]
    fn batched_is_deterministic() {
        let run = || {
            successes(run_ensemble_batched(
                factory,
                &proto(),
                4,
                SeedSequence::new(3),
                30,
            ))
            .iter()
            .map(|t| t.final_work())
            .collect::<Vec<f64>>()
        };
        let a = run();
        assert_eq!(a.len(), 4);
        assert_eq!(a, run());
    }
}
