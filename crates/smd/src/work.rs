//! Work trajectories and sub-trajectory segmentation.
//!
//! The external work of the moving guide is `W(t) = ∫₀ᵗ v F_spring dt'`,
//! with `F_spring = κ (z_guide − z_com)` — the thermodynamic work that
//! enters Jarzynski's equality. Each realization yields one monotone
//! series of [`WorkSample`]s along the guide coordinate.

use serde::{Deserialize, Serialize};

/// One sample along a pulling realization.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct WorkSample {
    /// Time since the pull began (ps).
    pub t_ps: f64,
    /// Guide displacement since the pull began (Å) — the JE reaction
    /// coordinate λ.
    pub guide_disp: f64,
    /// COM displacement of the SMD atoms since the pull began (Å) — the
    /// x-axis of Fig. 4.
    pub com_disp: f64,
    /// Accumulated external work (kcal/mol).
    pub work: f64,
    /// Instantaneous spring force (kcal mol⁻¹ Å⁻¹).
    pub force: f64,
}

/// A complete pulling realization.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct WorkTrajectory {
    /// Spring constant used (pN/Å, paper units).
    pub kappa_pn_per_a: f64,
    /// Pulling velocity used (Å/ns, paper units).
    pub v_a_per_ns: f64,
    /// RNG seed of the realization (provenance).
    pub seed: u64,
    /// Samples ordered by time.
    pub samples: Vec<WorkSample>,
}

impl WorkTrajectory {
    /// Final accumulated work (kcal/mol); `NaN` when empty.
    pub fn final_work(&self) -> f64 {
        self.samples.last().map_or(f64::NAN, |s| s.work)
    }

    /// Total guide displacement covered (Å); 0 when empty.
    pub fn guide_span(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.guide_disp)
    }

    /// Work interpolated at guide displacement `s` (linear between
    /// samples). `None` outside the sampled range.
    pub fn work_at(&self, s: f64) -> Option<f64> {
        interpolate(&self.samples, s, |w| w.work)
    }

    /// COM displacement interpolated at guide displacement `s`.
    pub fn com_at(&self, s: f64) -> Option<f64> {
        interpolate(&self.samples, s, |w| w.com_disp)
    }

    /// Basic integrity checks: time and guide displacement must be
    /// monotone non-decreasing.
    pub fn is_well_formed(&self) -> bool {
        self.samples.windows(2).all(|w| {
            w[1].t_ps >= w[0].t_ps
                && (w[1].guide_disp - w[0].guide_disp) * self.v_a_per_ns.signum() >= -1e-12
        })
    }
}

fn interpolate(samples: &[WorkSample], s: f64, f: impl Fn(&WorkSample) -> f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let last = samples.last().expect("samples non-empty: checked above");
    // Handle descending (negative-velocity) trajectories by flipping the
    // coordinate so it is ascending; the query flips with it, so an
    // out-of-range query stays out of range.
    let sign = if last.guide_disp >= 0.0 { 1.0 } else { -1.0 };
    let key = |w: &WorkSample| w.guide_disp * sign;
    let target = s * sign;
    if target < key(&samples[0]) - 1e-9 || target > key(last) + 1e-9 {
        return None;
    }
    let mut prev = &samples[0];
    for cur in &samples[1..] {
        if key(cur) >= target {
            let span = key(cur) - key(prev);
            if span <= 0.0 {
                return Some(f(cur));
            }
            let w = (target - key(prev)) / span;
            return Some(f(prev) * (1.0 - w) + f(cur) * w);
        }
        prev = cur;
    }
    Some(f(last))
}

/// Split a long trajectory into sub-trajectories of guide length
/// `segment_len` (§IV-A): work is re-zeroed at each segment start, so each
/// segment is an independent JE data set over its own 0..segment_len
/// coordinate.
///
/// Segments shorter than `segment_len` at the tail are dropped (the paper
/// uses complete sub-trajectories only).
pub fn segment_trajectory(traj: &WorkTrajectory, segment_len: f64) -> Vec<WorkTrajectory> {
    assert!(segment_len > 0.0, "segment length must be positive");
    let mut out = Vec::new();
    if traj.samples.is_empty() {
        return out;
    }
    let total = traj.guide_span().abs();
    let nseg = (total / segment_len).floor() as usize;
    for seg in 0..nseg {
        let lo = seg as f64 * segment_len;
        let hi = lo + segment_len;
        let mut origin: Option<(f64, f64, f64)> = None;
        let mut samples = Vec::new();
        for s in &traj.samples {
            let d = s.guide_disp.abs();
            if d + 1e-9 < lo || d > hi + 1e-9 {
                continue;
            }
            // Work, COM and time are re-zeroed at the first in-range sample.
            let (w0, c0, t0) = *origin.get_or_insert((s.work, s.com_disp, s.t_ps));
            samples.push(WorkSample {
                t_ps: s.t_ps - t0,
                guide_disp: s.guide_disp - lo * traj.v_a_per_ns.signum(),
                com_disp: s.com_disp - c0,
                work: s.work - w0,
                force: s.force,
            });
        }
        if samples.len() >= 2 {
            out.push(WorkTrajectory {
                kappa_pn_per_a: traj.kappa_pn_per_a,
                v_a_per_ns: traj.v_a_per_ns,
                seed: traj.seed,
                samples,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_traj(n: usize, slope: f64) -> WorkTrajectory {
        WorkTrajectory {
            kappa_pn_per_a: 100.0,
            v_a_per_ns: 12.5,
            seed: 0,
            samples: (0..=n)
                .map(|i| {
                    let s = i as f64 * 0.1;
                    WorkSample {
                        t_ps: s / 0.0125,
                        guide_disp: s,
                        com_disp: s * 0.9,
                        work: slope * s,
                        force: slope,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn final_work_and_span() {
        let t = linear_traj(100, 2.0);
        assert!((t.final_work() - 20.0).abs() < 1e-9);
        assert!((t.guide_span() - 10.0).abs() < 1e-9);
        assert!(t.is_well_formed());
    }

    #[test]
    fn interpolation_between_samples() {
        let t = linear_traj(100, 2.0);
        assert!((t.work_at(5.05).unwrap() - 10.1).abs() < 1e-9);
        assert!((t.com_at(5.0).unwrap() - 4.5).abs() < 1e-9);
        assert!(t.work_at(10.5).is_none());
        assert!(t.work_at(-0.5).is_none());
    }

    #[test]
    fn empty_trajectory_degenerates() {
        let t = WorkTrajectory {
            kappa_pn_per_a: 1.0,
            v_a_per_ns: 1.0,
            seed: 0,
            samples: vec![],
        };
        assert!(t.final_work().is_nan());
        assert_eq!(t.guide_span(), 0.0);
        assert!(t.work_at(0.0).is_none());
        assert!(segment_trajectory(&t, 1.0).is_empty());
    }

    #[test]
    fn segmentation_rezeroes_work() {
        let t = linear_traj(100, 3.0); // spans 10 Å
        let segs = segment_trajectory(&t, 2.5);
        assert_eq!(segs.len(), 4);
        for seg in &segs {
            assert!(seg.samples[0].work.abs() < 1e-9, "work must restart at 0");
            assert!(seg.samples[0].guide_disp.abs() < 1e-9);
            assert!(
                (seg.final_work() - 3.0 * 2.5).abs() < 1e-6,
                "each linear segment accumulates slope × length"
            );
            assert!(seg.is_well_formed());
        }
    }

    #[test]
    fn segmentation_drops_incomplete_tail() {
        let t = linear_traj(93, 1.0); // spans 9.3 Å
        let segs = segment_trajectory(&t, 2.5);
        assert_eq!(segs.len(), 3, "9.3/2.5 → 3 complete segments");
    }

    #[test]
    fn work_additivity_across_segments() {
        // Sum of segment works == total work difference over same span.
        let t = linear_traj(100, 1.7);
        let segs = segment_trajectory(&t, 2.0);
        let sum: f64 = segs.iter().map(|s| s.final_work()).sum();
        let direct = t.work_at(10.0).unwrap() - t.work_at(0.0).unwrap();
        assert!((sum - direct).abs() < 1e-6, "{sum} vs {direct}");
    }
}
