//! Drive one SMD realization: equilibrate with the spring static, then
//! move the guide at constant v and record the work integral.

use crate::protocol::PullProtocol;
use crate::pulling::SmdSpring;
use crate::work::{WorkSample, WorkTrajectory};
use spice_md::{MdError, Simulation};

/// Result of one pulling realization.
#[derive(Debug)]
pub struct PullOutcome {
    /// The recorded work trajectory.
    pub trajectory: WorkTrajectory,
    /// MD steps actually executed (equilibration + pull).
    pub steps: u64,
}

/// Phase 1 of a pull, exposed for ensemble clone-amortization: anchor a
/// static spring at the steered group's current COM (v = 0: the guide
/// holds still) and integrate `steps` steps. Returns the anchor COM —
/// the guide's starting position for a subsequent [`pull_from`].
pub fn anchor_and_hold(
    sim: &mut Simulation,
    protocol: &PullProtocol,
    steps: u64,
) -> Result<f64, MdError> {
    let group = sim.force_field().topology().group("smd")?.to_vec();
    let masses = sim.system().masses().to_vec();
    let hold = SmdSpring::new(group.clone(), &masses, protocol.kappa(), 0.0, 0.0, 0.0);
    let com = hold.com_z(sim.system().positions());
    let hold = SmdSpring::new(group, &masses, protocol.kappa(), 0.0, com, 0.0);
    sim.set_bias(Some(Box::new(hold)));
    sim.run(steps, &mut [])?;
    Ok(com)
}

/// Run one constant-velocity pull on `sim`, steering the group named
/// `"smd"` in the simulation's topology.
///
/// Sequence:
/// 1. equilibrate `protocol.equilibration_steps` with the spring anchored
///    at the group's current COM (v = 0 effectively: the guide holds
///    still),
/// 2. pull for `protocol.pull_steps()`, accumulating
///    `W += v·F_spring·dt` by the trapezoid rule and sampling every
///    `sample_stride` steps.
///
/// The realization's `seed` field is provenance only — the caller seeds
/// the simulation itself.
pub fn run_pull(
    sim: &mut Simulation,
    protocol: &PullProtocol,
    seed: u64,
) -> Result<PullOutcome, MdError> {
    protocol.validate();
    // Phase 1: hold the spring static at the current COM.
    let com0 = anchor_and_hold(sim, protocol, protocol.equilibration_steps)?;
    let mut out = pull_from(sim, protocol, seed, com0)?;
    out.steps += protocol.equilibration_steps;
    Ok(out)
}

/// Phase 2 of a pull, exposed for ensemble clone-amortization: pull the
/// guide at constant v starting from anchor `com0` (the guide starts
/// where the system actually is, as in NAMD's SMDk restart convention)
/// and record the work integral. `PullOutcome::steps` counts only the
/// pull steps — callers add whatever hold/equilibration they performed.
pub fn pull_from(
    sim: &mut Simulation,
    protocol: &PullProtocol,
    seed: u64,
    com0: f64,
) -> Result<PullOutcome, MdError> {
    let group = sim.force_field().topology().group("smd")?.to_vec();
    let masses = sim.system().masses().to_vec();
    let spring = SmdSpring::new(
        group,
        &masses,
        protocol.kappa(),
        protocol.velocity(),
        com0,
        sim.time_ps(),
    );
    let probe = spring.clone();
    sim.set_bias(Some(Box::new(spring)));

    let t0 = sim.time_ps();
    let com_start = probe.com_z(sim.system().positions());
    let dt = sim.dt();
    let v = protocol.velocity();
    let mut work = 0.0;
    let mut prev_force = probe.spring_force(sim.system().positions(), sim.time_ps());
    let mut samples =
        Vec::with_capacity((protocol.pull_steps() / protocol.sample_stride) as usize + 2);
    samples.push(WorkSample {
        t_ps: 0.0,
        guide_disp: 0.0,
        com_disp: 0.0,
        work: 0.0,
        force: prev_force,
    });

    let nsteps = protocol.pull_steps();
    for step in 1..=nsteps {
        sim.step_once();
        let t = sim.time_ps();
        let force = probe.spring_force(sim.system().positions(), t);
        // Trapezoid: dW = v · (F_prev + F)/2 · dt.
        work += v * 0.5 * (prev_force + force) * dt;
        prev_force = force;
        #[cfg(feature = "audit")]
        crate::audit::check_finite_work(work, force, step);
        if step % protocol.sample_stride == 0 || step == nsteps {
            samples.push(WorkSample {
                t_ps: t - t0,
                guide_disp: v * (t - t0),
                com_disp: probe.com_z(sim.system().positions()) - com_start,
                work,
                force,
            });
        }
        if step % 200 == 0 && !sim.system().is_finite() {
            return Err(MdError::NumericalBlowup {
                step: sim.step_count(),
                what: "non-finite state during pull".into(),
            });
        }
    }
    sim.set_bias(None);

    Ok(PullOutcome {
        trajectory: WorkTrajectory {
            kappa_pn_per_a: protocol.kappa_pn_per_a,
            v_a_per_ns: protocol.v_a_per_ns,
            seed,
            samples,
        },
        steps: nsteps,
    })
}

/// Run one *reverse* pull: the strand is first translated to the far end
/// of the sub-trajectory and equilibrated with the spring anchored there,
/// then pulled back at −v over the same distance. Forward + reverse
/// ensembles feed the Crooks/BAR estimators
/// (`spice_jarzynski::crooks`).
pub fn run_reverse_pull(
    sim: &mut Simulation,
    protocol: &PullProtocol,
    seed: u64,
) -> Result<PullOutcome, MdError> {
    protocol.validate();
    let group = sim.force_field().topology().group("smd")?.to_vec();
    // Translate the steered group to the far end (the reverse process
    // must start from equilibrium in the END state).
    let shift = protocol.pull_distance * protocol.velocity().signum();
    for &i in &group {
        sim.system_mut().positions_mut()[i].z += shift;
    }
    sim.refresh_forces();
    // Reverse protocol: same κ, same |v|, opposite direction.
    let reversed = PullProtocol {
        v_a_per_ns: -protocol.v_a_per_ns,
        ..*protocol
    };
    run_pull(sim, &reversed, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::integrate::LangevinBaoab;
    use spice_md::{System, Topology, Vec3};

    /// One bead in a harmonic well U = a z² — the PMF is known exactly.
    fn well_sim(seed: u64, a: f64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.set_group("smd", vec![0]);
        let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), a));
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
            0.02,
        )
    }

    fn quick_protocol() -> PullProtocol {
        PullProtocol {
            kappa_pn_per_a: 200.0,
            v_a_per_ns: 2000.0, // fast: 2 Å/ps·10⁻³ → short test
            pull_distance: 4.0,
            dt_ps: 0.02,
            equilibration_steps: 200,
            sample_stride: 10,
        }
    }

    #[test]
    fn pull_produces_well_formed_trajectory() {
        let mut sim = well_sim(1, 1.0);
        let out = run_pull(&mut sim, &quick_protocol(), 1).unwrap();
        let t = &out.trajectory;
        assert!(t.is_well_formed());
        assert!(
            (t.guide_span() - 4.0).abs() < 0.1,
            "span {}",
            t.guide_span()
        );
        assert!(t.samples.len() > 10);
        assert_eq!(t.kappa_pn_per_a, 200.0);
    }

    #[test]
    fn com_follows_guide_for_stiff_spring() {
        let mut sim = well_sim(2, 0.5);
        let mut proto = quick_protocol();
        proto.kappa_pn_per_a = 2000.0; // very stiff
        let out = run_pull(&mut sim, &proto, 2).unwrap();
        let last = out.trajectory.samples.last().unwrap();
        assert!(
            (last.com_disp - last.guide_disp).abs() < 1.0,
            "stiff spring: com {} vs guide {}",
            last.com_disp,
            last.guide_disp
        );
    }

    #[test]
    fn work_roughly_matches_pmf_difference_when_slow() {
        // Pulling a bead up a harmonic PMF Φ = a z²: mean work ≥ ΔΦ
        // (second law), and for slow-ish pulls it's within ~2× of ΔΦ.
        let a = 0.5;
        let mut works = Vec::new();
        for seed in 0..8 {
            let mut sim = well_sim(seed, a);
            let mut proto = quick_protocol();
            proto.v_a_per_ns = 500.0;
            proto.pull_distance = 3.0;
            let out = run_pull(&mut sim, &proto, seed).unwrap();
            works.push(out.trajectory.final_work());
        }
        let mean_w = spice_stats::mean(&works);
        let dphi = a * 3.0 * 3.0; // Φ(3) - Φ(0) = 4.5 kcal/mol
        assert!(
            mean_w > 0.6 * dphi,
            "mean work {mean_w} much below ΔΦ {dphi} — work integral broken"
        );
        assert!(
            mean_w < 4.0 * dphi,
            "mean work {mean_w} absurdly above ΔΦ {dphi}"
        );
    }

    #[test]
    fn dissipation_grows_with_velocity() {
        // ⟨W⟩ − ΔΦ (dissipated work) must increase with pulling speed —
        // the systematic-error mechanism of §IV-C.
        let a = 0.5;
        let mean_work = |v: f64| {
            let works: Vec<f64> = (0..6)
                .map(|seed| {
                    let mut sim = well_sim(100 + seed, a);
                    let mut proto = quick_protocol();
                    proto.v_a_per_ns = v;
                    proto.pull_distance = 3.0;
                    run_pull(&mut sim, &proto, seed)
                        .unwrap()
                        .trajectory
                        .final_work()
                })
                .collect();
            spice_stats::mean(&works)
        };
        let w_slow = mean_work(250.0);
        let w_fast = mean_work(4000.0);
        assert!(
            w_fast > w_slow,
            "dissipation must grow with v: slow {w_slow} vs fast {w_fast}"
        );
    }

    #[test]
    fn missing_smd_group_is_an_error() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let ff = ForceField::new(Topology::new());
        let mut sim = Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 1.0, 0)), 0.01);
        assert!(run_pull(&mut sim, &quick_protocol(), 0).is_err());
    }

    #[test]
    fn reverse_pull_starts_displaced_and_returns() {
        let mut sim = well_sim(9, 0.5);
        let proto = quick_protocol();
        let out = run_reverse_pull(&mut sim, &proto, 9).unwrap();
        let t = &out.trajectory;
        assert!(t.is_well_formed());
        // Reverse trajectory moves in −z: guide displacement negative.
        assert!(t.guide_span() < 0.0, "span {}", t.guide_span());
        assert!((t.guide_span() + proto.pull_distance).abs() < 0.1);
    }

    #[test]
    fn forward_reverse_work_bracket_delta_f() {
        // Second law from both sides: ⟨W_F⟩ ≥ ΔΦ ≥ −⟨W_R⟩ for the
        // harmonic well (ΔΦ = a·d²).
        let a = 0.5;
        let proto = PullProtocol {
            v_a_per_ns: 500.0,
            pull_distance: 3.0,
            ..quick_protocol()
        };
        let dphi = a * 9.0;
        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        for seed in 0..8 {
            let mut s1 = well_sim(200 + seed, a);
            fwd.push(
                run_pull(&mut s1, &proto, seed)
                    .unwrap()
                    .trajectory
                    .final_work(),
            );
            let mut s2 = well_sim(300 + seed, a);
            rev.push(
                run_reverse_pull(&mut s2, &proto, seed)
                    .unwrap()
                    .trajectory
                    .final_work(),
            );
        }
        let wf = spice_stats::mean(&fwd);
        let wr = spice_stats::mean(&rev);
        assert!(wf > dphi - 1.5, "⟨W_F⟩ = {wf} should be ≳ ΔΦ = {dphi}");
        assert!(-wr < dphi + 1.5, "−⟨W_R⟩ = {} should be ≲ ΔΦ = {dphi}", -wr);
        assert!(wf + wr > -0.5, "total hysteresis must be ≥ 0: {}", wf + wr);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = well_sim(seed, 1.0);
            run_pull(&mut sim, &quick_protocol(), seed)
                .unwrap()
                .trajectory
                .final_work()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
