//! Rayon-parallel ensembles of independent pulling realizations.
//!
//! This is the in-process analogue of the paper's production campaign:
//! "72 parallel MD simulations ... each individual simulation running on
//! 128 or 256 processors" (§III). Here each realization is an independent
//! task in a work-stealing pool; the grid-level scheduling of those tasks
//! onto federated resources is modeled separately by `spice-gridsim`.

use crate::protocol::PullProtocol;
use crate::runner::{anchor_and_hold, pull_from, run_pull};
use crate::work::WorkTrajectory;
use rayon::prelude::*;
use spice_md::checkpoint::Snapshot;
use spice_md::{MdError, Simulation};
use spice_stats::rng::SeedSequence;
use spice_telemetry::Telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `n` independent realizations of `protocol`.
///
/// `factory(seed)` must build a fresh, independently seeded simulation
/// (including its own thermalization); realization `i` gets seed
/// `seeds.stream(i)`. Realizations run in parallel via rayon and results
/// come back ordered by realization index regardless of schedule.
///
/// Realizations that fail (numerical blow-up) are returned as errors in
/// the per-realization slot rather than aborting the ensemble — on the
/// grid, one failed job does not kill the campaign.
pub fn run_ensemble<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    protocol.validate();
    (0..n)
        .into_par_iter()
        .map(|i| isolated_realization(&factory, protocol, seeds, i))
        .collect()
}

/// One realization with panic isolation: a blown-up realization must not
/// kill the campaign (on the grid, one failed job doesn't either).
fn isolated_realization<F>(
    factory: &F,
    protocol: &PullProtocol,
    seeds: SeedSequence,
    i: usize,
) -> Result<WorkTrajectory, MdError>
where
    F: Fn(u64) -> Simulation + Sync,
{
    let seed = seeds.stream(i as u64);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = factory(seed);
        run_pull(&mut sim, protocol, seed).map(|o| o.trajectory)
    }))
    .unwrap_or_else(|_| {
        Err(MdError::NumericalBlowup {
            step: 0,
            what: format!("realization {i} (seed {seed}) panicked"),
        })
    })
}

/// Run `n` realizations of `protocol`, amortizing equilibration via
/// checkpoint/clone (§III: "checkpoint and cloning of simulations ...
/// without perturbing the original simulation").
///
/// Instead of equilibrating every realization from scratch (as
/// [`run_ensemble`] does through [`run_pull`]), this equilibrates *once*:
/// a master simulation runs the full `protocol.equilibration_steps` hold,
/// is captured as a [`Snapshot`], and each realization is forked from
/// that snapshot with a fresh thermostat seed (`seeds.stream(i)`). Because
/// the Langevin noise is keyed on `(seed, step)`, the clones diverge
/// immediately; `decorrelation_steps` additional held steps per clone wash
/// out the correlated starting configuration before the pull begins.
///
/// The saved work is `(n - 1) · equilibration_steps` minus
/// `n · decorrelation_steps` — a large win whenever decorrelation is much
/// shorter than equilibration (a few thermostat relaxation times `1/γ`
/// suffice for velocity decorrelation; positions decorrelate over the
/// slowest restrained mode).
///
/// Statistical caveat: clones share the master's equilibrated
/// configuration, so with too few decorrelation steps the realizations are
/// *correlated* samples of the initial Boltzmann ensemble and the work
/// variance is underestimated. Choose `decorrelation_steps` of at least a
/// few `1/(γ·dt)` steps; the equivalence test below checks mean *and*
/// spread against the independent path.
///
/// If the shared equilibration itself fails, every realization slot gets
/// an error describing that single failure (errors are not `Clone`, so
/// each slot carries a freshly formatted copy).
pub fn run_ensemble_cloned<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
    decorrelation_steps: u64,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    run_ensemble_cloned_traced(
        factory,
        protocol,
        n,
        seeds,
        decorrelation_steps,
        &Telemetry::disabled(),
        0,
    )
}

/// [`run_ensemble_cloned`] with telemetry attached.
///
/// The shared equilibration runs under an `smd.equilibrate` span on the
/// `("smd.ensemble", track_key)` track; realization `i` gets its own
/// `("smd.realization", i)` track carrying an `smd.realization` span plus
/// the per-step MD probes/instants (the track's logical clock is the
/// simulation step counter). Kernel counters are *published* — snapshot
/// totals added into the shared `md.*` counters after each realization
/// finishes — rather than live-bound, so concurrent realizations
/// aggregate deterministically (sums commute; a live bind would be
/// last-writer-wins). Passing `Telemetry::disabled()` makes every hook a
/// no-op; either way the trajectories are bit-identical to the untraced
/// path.
#[allow(clippy::too_many_arguments)]
pub fn run_ensemble_cloned_traced<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
    decorrelation_steps: u64,
    telemetry: &Telemetry,
    track_key: u64,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    protocol.validate();
    if n == 0 {
        return Vec::new();
    }
    // Shared equilibration: one master hold, seeded off-stream so it can
    // never collide with a realization seed (streams are indexed 0..n) or
    // the pipeline's bootstrap stream (u64::MAX on the *parent* sequence).
    let master_seed = seeds.child(u64::MAX).stream(0);
    let ens_track = telemetry.track("smd.ensemble", track_key);
    let master = (|| -> Result<Snapshot, MdError> {
        let _span = ens_track.span("smd.equilibrate");
        let mut sim = factory(master_seed);
        if telemetry.is_enabled() {
            sim.attach_telemetry(telemetry, ens_track.clone());
        }
        anchor_and_hold(&mut sim, protocol, protocol.equilibration_steps)?;
        let snap = Snapshot::capture(&sim, "shared-equilibration");
        if telemetry.is_enabled() {
            sim.kernel_counters().publish(telemetry);
        }
        Ok(snap)
    })();
    let snap = match master {
        Ok(snap) => snap,
        Err(e) => {
            let msg = format!("shared equilibration failed: {e}");
            return (0..n)
                .map(|_| Err(MdError::Checkpoint(msg.clone())))
                .collect();
        }
    };

    (0..n)
        .into_par_iter()
        .map(|i| {
            let seed = seeds.stream(i as u64);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let r_track = telemetry.track("smd.realization", i as u64);
                let _span = r_track.span("smd.realization");
                // Fresh thermostat seed + restored state = divergent clone.
                let mut sim = factory(seed);
                if telemetry.is_enabled() {
                    sim.attach_telemetry(telemetry, r_track.clone());
                }
                snap.restore(&mut sim)?;
                // Post-clone decorrelation: held spring, new noise stream.
                // The hold re-anchors at the clone's current COM, and the
                // pull starts from that same anchor — the same
                // hold-then-pull continuity run_pull has.
                let com0 = anchor_and_hold(&mut sim, protocol, decorrelation_steps)?;
                let out = pull_from(&mut sim, protocol, seed, com0).map(|o| o.trajectory);
                if telemetry.is_enabled() {
                    sim.kernel_counters().publish(telemetry);
                }
                out
            }))
            .unwrap_or_else(|_| {
                Err(MdError::NumericalBlowup {
                    step: 0,
                    what: format!("cloned realization {i} (seed {seed}) panicked"),
                })
            })
        })
        .collect()
}

/// Split ensemble results into successful trajectories and the errors of
/// the failed realizations, preserving realization order within each
/// half. Callers that must account for attrition (the pipeline's PMF
/// cells report it) use this instead of [`successes`].
pub fn partition_outcomes(
    results: Vec<Result<WorkTrajectory, MdError>>,
) -> (Vec<WorkTrajectory>, Vec<MdError>) {
    let mut oks = Vec::with_capacity(results.len());
    let mut errs = Vec::new();
    for r in results {
        match r {
            Ok(t) => oks.push(t),
            Err(e) => errs.push(e),
        }
    }
    (oks, errs)
}

/// Keep only the successful realizations. Failures are *not* silently
/// discarded: each dropped realization is logged to stderr (a biased
/// Jarzynski average from unnoticed attrition is exactly the failure mode
/// §IV warns about). Use [`partition_outcomes`] to handle the errors
/// programmatically.
pub fn successes(results: Vec<Result<WorkTrajectory, MdError>>) -> Vec<WorkTrajectory> {
    let (oks, errs) = partition_outcomes(results);
    if !errs.is_empty() {
        // spice-lint: allow(T001) successes() is the error-discarding convenience; the stderr note is its anti-silent-attrition contract — use partition_outcomes to handle errors programmatically
        eprintln!(
            "spice-smd: dropping {} failed realization(s) from ensemble of {}: {}",
            errs.len(),
            errs.len() + oks.len(),
            errs.first().map(|e| e.to_string()).unwrap_or_default()
        );
    }
    oks
}

/// Like [`run_ensemble`] but reports completion through a shared atomic
/// counter — the campaign-monitoring hook a steering client polls
/// ("launch, monitor and steer a large number of parallel simulations").
/// `progress` is incremented exactly once per finished realization,
/// regardless of outcome; relaxed ordering suffices for a monotone
/// progress gauge.
pub fn run_ensemble_with_progress<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
    progress: &AtomicUsize,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    protocol.validate();
    (0..n)
        .into_par_iter()
        .map(|i| {
            let out = isolated_realization(&factory, protocol, seeds, i);
            // spice-lint: allow(R001) monotone progress gauge for the steering UI; its value is never read back into any result
            progress.fetch_add(1, Ordering::Relaxed);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::{System, Topology, Vec3};

    fn factory(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.set_group("smd", vec![0]);
        let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 0.5));
        Simulation::new(
            sys,
            ff,
            Box::new(spice_md::integrate::LangevinBaoab::new(300.0, 5.0, seed)),
            0.02,
        )
    }

    fn proto() -> PullProtocol {
        PullProtocol {
            kappa_pn_per_a: 300.0,
            v_a_per_ns: 2000.0,
            pull_distance: 2.0,
            dt_ps: 0.02,
            equilibration_steps: 100,
            sample_stride: 10,
        }
    }

    #[test]
    fn ensemble_returns_n_ordered_realizations() {
        let seeds = SeedSequence::new(7);
        let results = run_ensemble(factory, &proto(), 6, seeds);
        assert_eq!(results.len(), 6);
        let trajs = successes(results);
        assert_eq!(trajs.len(), 6);
        // Seeds recorded in order.
        for (i, t) in trajs.iter().enumerate() {
            assert_eq!(t.seed, seeds.stream(i as u64));
        }
    }

    #[test]
    fn realizations_are_independent() {
        let seeds = SeedSequence::new(8);
        let trajs = successes(run_ensemble(factory, &proto(), 4, seeds));
        let works: Vec<f64> = trajs.iter().map(|t| t.final_work()).collect();
        for i in 0..works.len() {
            for j in (i + 1)..works.len() {
                assert_ne!(works[i], works[j], "realizations must differ");
            }
        }
    }

    #[test]
    fn progress_counter_reaches_n() {
        let progress = AtomicUsize::new(0);
        let results =
            run_ensemble_with_progress(factory, &proto(), 5, SeedSequence::new(4), &progress);
        assert_eq!(results.len(), 5);
        assert_eq!(progress.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn ensemble_is_deterministic_regardless_of_parallelism() {
        let a = successes(run_ensemble(factory, &proto(), 5, SeedSequence::new(3)));
        let b = successes(run_ensemble(factory, &proto(), 5, SeedSequence::new(3)));
        let wa: Vec<f64> = a.iter().map(|t| t.final_work()).collect();
        let wb: Vec<f64> = b.iter().map(|t| t.final_work()).collect();
        assert_eq!(wa, wb);
    }

    #[test]
    fn cloned_ensemble_is_deterministic() {
        let run = || {
            successes(run_ensemble_cloned(
                factory,
                &proto(),
                5,
                SeedSequence::new(11),
                40,
            ))
            .iter()
            .map(|t| t.final_work())
            .collect::<Vec<f64>>()
        };
        let a = run();
        assert_eq!(a.len(), 5);
        assert_eq!(a, run());
    }

    #[test]
    fn cloned_realizations_diverge_by_seed() {
        let trajs = successes(run_ensemble_cloned(
            factory,
            &proto(),
            5,
            SeedSequence::new(12),
            40,
        ));
        assert_eq!(trajs.len(), 5);
        let seeds = SeedSequence::new(12);
        let works: Vec<f64> = trajs.iter().map(|t| t.final_work()).collect();
        for (i, t) in trajs.iter().enumerate() {
            assert_eq!(t.seed, seeds.stream(i as u64), "seed provenance");
            assert!(t.is_well_formed());
        }
        for i in 0..works.len() {
            for j in (i + 1)..works.len() {
                assert_ne!(works[i], works[j], "clones must diverge by seed");
            }
        }
    }

    #[test]
    fn cloned_zero_realizations_is_empty() {
        let out = run_ensemble_cloned(factory, &proto(), 0, SeedSequence::new(1), 10);
        assert!(out.is_empty());
    }

    #[test]
    fn cloned_work_distribution_matches_independent_ensemble() {
        // Statistical equivalence: for the harmonic test system, work
        // mean and spread from cloned starts (with decorrelation) must
        // agree with fully independent equilibrations within the
        // finite-sample scatter of n = 24 realizations.
        let n = 24;
        let indep = successes(run_ensemble(factory, &proto(), n, SeedSequence::new(21)));
        let cloned = successes(run_ensemble_cloned(
            factory,
            &proto(),
            n,
            SeedSequence::new(22),
            60, // ≳ a few thermostat relaxation times: 1/(γ·dt) = 10 steps
        ));
        assert_eq!(indep.len(), n);
        assert_eq!(cloned.len(), n);
        let wi: Vec<f64> = indep.iter().map(|t| t.final_work()).collect();
        let wc: Vec<f64> = cloned.iter().map(|t| t.final_work()).collect();
        let (mi, mc) = (spice_stats::mean(&wi), spice_stats::mean(&wc));
        let (si, sc) = (spice_stats::std_dev(&wi), spice_stats::std_dev(&wc));
        // Means within ~2 standard errors of each other.
        let se = (si * si / n as f64 + sc * sc / n as f64).sqrt();
        assert!(
            (mi - mc).abs() < 3.0 * se.max(0.05),
            "cloned mean {mc} vs independent mean {mi} (se {se})"
        );
        // Spreads within a factor ~2.5 (χ² scatter at n = 24 is ~±35%);
        // a collapsed spread would flag correlated starts.
        assert!(
            sc > si / 2.5 && sc < si * 2.5,
            "cloned spread {sc} vs independent spread {si}"
        );
    }
}
