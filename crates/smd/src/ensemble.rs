//! Rayon-parallel ensembles of independent pulling realizations.
//!
//! This is the in-process analogue of the paper's production campaign:
//! "72 parallel MD simulations ... each individual simulation running on
//! 128 or 256 processors" (§III). Here each realization is an independent
//! task in a work-stealing pool; the grid-level scheduling of those tasks
//! onto federated resources is modeled separately by `spice-gridsim`.

use crate::protocol::PullProtocol;
use crate::runner::run_pull;
use crate::work::WorkTrajectory;
use rayon::prelude::*;
use spice_md::{MdError, Simulation};
use spice_stats::rng::SeedSequence;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `n` independent realizations of `protocol`.
///
/// `factory(seed)` must build a fresh, independently seeded simulation
/// (including its own thermalization); realization `i` gets seed
/// `seeds.stream(i)`. Realizations run in parallel via rayon and results
/// come back ordered by realization index regardless of schedule.
///
/// Realizations that fail (numerical blow-up) are returned as errors in
/// the per-realization slot rather than aborting the ensemble — on the
/// grid, one failed job does not kill the campaign.
pub fn run_ensemble<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    protocol.validate();
    (0..n)
        .into_par_iter()
        .map(|i| isolated_realization(&factory, protocol, seeds, i))
        .collect()
}

/// One realization with panic isolation: a blown-up realization must not
/// kill the campaign (on the grid, one failed job doesn't either).
fn isolated_realization<F>(
    factory: &F,
    protocol: &PullProtocol,
    seeds: SeedSequence,
    i: usize,
) -> Result<WorkTrajectory, MdError>
where
    F: Fn(u64) -> Simulation + Sync,
{
    let seed = seeds.stream(i as u64);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sim = factory(seed);
        run_pull(&mut sim, protocol, seed).map(|o| o.trajectory)
    }))
    .unwrap_or_else(|_| {
        Err(MdError::NumericalBlowup {
            step: 0,
            what: format!("realization {i} (seed {seed}) panicked"),
        })
    })
}

/// Keep only the successful realizations (logging-free convenience).
pub fn successes(results: Vec<Result<WorkTrajectory, MdError>>) -> Vec<WorkTrajectory> {
    results.into_iter().filter_map(Result::ok).collect()
}

/// Like [`run_ensemble`] but reports completion through a shared atomic
/// counter — the campaign-monitoring hook a steering client polls
/// ("launch, monitor and steer a large number of parallel simulations").
/// `progress` is incremented exactly once per finished realization,
/// regardless of outcome; relaxed ordering suffices for a monotone
/// progress gauge.
pub fn run_ensemble_with_progress<F>(
    factory: F,
    protocol: &PullProtocol,
    n: usize,
    seeds: SeedSequence,
    progress: &AtomicUsize,
) -> Vec<Result<WorkTrajectory, MdError>>
where
    F: Fn(u64) -> Simulation + Sync,
{
    protocol.validate();
    (0..n)
        .into_par_iter()
        .map(|i| {
            let out = isolated_realization(&factory, protocol, seeds, i);
            progress.fetch_add(1, Ordering::Relaxed);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::{System, Topology, Vec3};

    fn factory(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 50.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.set_group("smd", vec![0]);
        let ff = ForceField::new(topo).with_restraint(Restraint::harmonic(0, Vec3::zero(), 0.5));
        Simulation::new(
            sys,
            ff,
            Box::new(spice_md::integrate::LangevinBaoab::new(300.0, 5.0, seed)),
            0.02,
        )
    }

    fn proto() -> PullProtocol {
        PullProtocol {
            kappa_pn_per_a: 300.0,
            v_a_per_ns: 2000.0,
            pull_distance: 2.0,
            dt_ps: 0.02,
            equilibration_steps: 100,
            sample_stride: 10,
        }
    }

    #[test]
    fn ensemble_returns_n_ordered_realizations() {
        let seeds = SeedSequence::new(7);
        let results = run_ensemble(factory, &proto(), 6, seeds);
        assert_eq!(results.len(), 6);
        let trajs = successes(results);
        assert_eq!(trajs.len(), 6);
        // Seeds recorded in order.
        for (i, t) in trajs.iter().enumerate() {
            assert_eq!(t.seed, seeds.stream(i as u64));
        }
    }

    #[test]
    fn realizations_are_independent() {
        let seeds = SeedSequence::new(8);
        let trajs = successes(run_ensemble(factory, &proto(), 4, seeds));
        let works: Vec<f64> = trajs.iter().map(|t| t.final_work()).collect();
        for i in 0..works.len() {
            for j in (i + 1)..works.len() {
                assert_ne!(works[i], works[j], "realizations must differ");
            }
        }
    }

    #[test]
    fn progress_counter_reaches_n() {
        let progress = AtomicUsize::new(0);
        let results = run_ensemble_with_progress(
            factory,
            &proto(),
            5,
            SeedSequence::new(4),
            &progress,
        );
        assert_eq!(results.len(), 5);
        assert_eq!(progress.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn ensemble_is_deterministic_regardless_of_parallelism() {
        let a = successes(run_ensemble(factory, &proto(), 5, SeedSequence::new(3)));
        let b = successes(run_ensemble(factory, &proto(), 5, SeedSequence::new(3)));
        let wa: Vec<f64> = a.iter().map(|t| t.final_work()).collect();
        let wb: Vec<f64> = b.iter().map(|t| t.final_work()).collect();
        assert_eq!(wa, wb);
    }
}
