//! The steering protocol.

use serde::{Deserialize, Serialize};
use spice_md::Vec3;

/// Control messages flowing *toward* a simulation (from steering clients
/// or, via the direct channel, from the visualizer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMessage {
    /// Suspend integration (the simulation holds at its emit point).
    Pause,
    /// Resume integration.
    Resume,
    /// Terminate the run cleanly.
    Stop,
    /// Change a named steerable parameter.
    SetParam {
        /// Parameter name (e.g. "target_temperature").
        name: String,
        /// New value.
        value: f64,
    },
    /// Capture a checkpoint under the given label (§III).
    Checkpoint {
        /// Label for later retrieval / cloning.
        label: String,
    },
    /// Apply an interactive steering force to a group of atoms until the
    /// next emit point (IMD).
    ApplyForce {
        /// Target atom indices.
        atoms: Vec<usize>,
        /// Force per atom (kcal mol⁻¹ Å⁻¹).
        force: Vec3,
    },
    /// Ask the simulation to publish a full-detail frame next emit.
    RequestFrame,
}

/// A published data frame (simulation → visualizer / clients).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Step at which the frame was emitted.
    pub step: u64,
    /// Simulation time (ps).
    pub time_ps: f64,
    /// Instantaneous temperature (K).
    pub temperature: f64,
    /// Total potential energy (kcal/mol).
    pub potential: f64,
    /// COM z of the steered group (Å), if one is defined.
    pub steered_com_z: Option<f64>,
    /// Full coordinates — only when detail was requested (frames are
    /// otherwise kept light for the wide-area link).
    pub positions: Option<Vec<Vec3>>,
}

impl Frame {
    /// Approximate wire size in bytes (drives network-transfer modeling).
    pub fn wire_bytes(&self) -> u64 {
        let base = 64u64;
        match &self.positions {
            Some(p) => base + (p.len() as u64) * 24,
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_roundtrip_json() {
        let msgs = vec![
            ControlMessage::Pause,
            ControlMessage::SetParam {
                name: "kappa".into(),
                value: 1.44,
            },
            ControlMessage::ApplyForce {
                atoms: vec![0, 3],
                force: Vec3::new(0.0, 0.0, 5.0),
            },
            ControlMessage::Checkpoint {
                label: "pre-pull".into(),
            },
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: ControlMessage = serde_json::from_str(&s).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn frame_wire_size_scales_with_detail() {
        let light = Frame {
            step: 1,
            time_ps: 0.1,
            temperature: 300.0,
            potential: -10.0,
            steered_com_z: Some(42.0),
            positions: None,
        };
        let heavy = Frame {
            positions: Some(vec![Vec3::zero(); 1000]),
            ..light.clone()
        };
        assert_eq!(light.wire_bytes(), 64);
        assert_eq!(heavy.wire_bytes(), 64 + 24_000);
    }
}
