//! The scientist's steering client.
//!
//! Wraps the grid service in the verbs of the RealityGrid steering API
//! (pause/resume, parameter changes, checkpoint & clone) plus frame
//! consumption for monitoring.

use crate::message::{ControlMessage, Frame};
use crate::service::{ComponentId, ComponentKind, SharedService};
use spice_md::{MdError, Simulation, Vec3};

/// A steering client attached to one simulation.
pub struct SteeringClient {
    service: SharedService,
    id: ComponentId,
    sim: ComponentId,
}

impl SteeringClient {
    /// Register a client on `service`, steering simulation `sim`.
    pub fn attach(service: SharedService, sim: ComponentId) -> Self {
        let id = service.lock().register(ComponentKind::SteeringClient);
        SteeringClient { service, id, sim }
    }

    /// This client's component id.
    pub fn component_id(&self) -> ComponentId {
        self.id
    }

    /// Pause the simulation at its next emit point.
    pub fn pause(&self) {
        self.service
            .lock()
            .send_control(self.sim, ControlMessage::Pause);
    }

    /// Resume a paused simulation.
    pub fn resume(&self) {
        self.service
            .lock()
            .send_control(self.sim, ControlMessage::Resume);
    }

    /// Stop the simulation cleanly.
    pub fn stop(&self) {
        self.service
            .lock()
            .send_control(self.sim, ControlMessage::Stop);
    }

    /// Change a steerable parameter.
    pub fn set_param(&self, name: impl Into<String>, value: f64) {
        self.service.lock().send_control(
            self.sim,
            ControlMessage::SetParam {
                name: name.into(),
                value,
            },
        );
    }

    /// Request a checkpoint under `label`.
    pub fn checkpoint(&self, label: impl Into<String>) {
        self.service.lock().send_control(
            self.sim,
            ControlMessage::Checkpoint {
                label: label.into(),
            },
        );
    }

    /// Apply an interactive force to `atoms`.
    pub fn apply_force(&self, atoms: Vec<usize>, force: Vec3) {
        self.service
            .lock()
            .send_control(self.sim, ControlMessage::ApplyForce { atoms, force });
    }

    /// Ask the simulation for a full-coordinate frame.
    pub fn request_detail(&self) {
        self.service
            .lock()
            .send_control(self.sim, ControlMessage::RequestFrame);
    }

    /// Pop the oldest frame addressed to this client.
    pub fn next_frame(&self) -> Option<Frame> {
        self.service.lock().next_frame(self.id)
    }

    /// Drain all pending frames, returning the newest (monitoring use).
    pub fn latest_frame(&self) -> Option<Frame> {
        let mut last = None;
        while let Some(f) = self.next_frame() {
            last = Some(f);
        }
        last
    }

    /// Clone a checkpointed state into `target` — the §III workflow:
    /// "exploring a particular configuration in greater detail (…)
    /// without perturbing the original simulation". The target keeps its
    /// own (different) noise seed, so it diverges as an independent
    /// replica.
    pub fn clone_into(&self, label: &str, target: &mut Simulation) -> Result<(), MdError> {
        let snap = self
            .service
            .lock()
            .checkpoint(label)
            .cloned()
            .ok_or_else(|| MdError::Checkpoint(format!("no checkpoint labelled '{label}'")))?;
        snap.restore(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::GridService;
    use crate::sim_side::SteeringHook;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::integrate::LangevinBaoab;
    use spice_md::{System, Topology};

    fn make_sim(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::new(1.0, 0.0, 0.0), 10.0, 0.0, 0);
        let ff = ForceField::new(Topology::new()).with_restraint(Restraint::harmonic(
            0,
            Vec3::zero(),
            1.0,
        ));
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 2.0, seed)),
            0.01,
        )
    }

    #[test]
    fn full_checkpoint_clone_workflow() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 10, vec![0]);
        let client = SteeringClient::attach(service.clone(), hook.component_id());

        let mut original = make_sim(1);
        client.checkpoint("branch");
        original.run(50, &mut [&mut hook]).unwrap();

        // Clone into a replica with a different seed and verify divergence
        // without perturbing the original.
        let mut replica = make_sim(999);
        client.clone_into("branch", &mut replica).unwrap();
        assert_eq!(replica.step_count(), 10, "cloned from the first emit point");
        let orig_before = original.system().positions().to_vec();
        replica.run(40, &mut []).unwrap();
        assert_eq!(
            original.system().positions(),
            orig_before.as_slice(),
            "original untouched by clone"
        );
        assert_ne!(replica.system().positions(), original.system().positions());
    }

    #[test]
    fn clone_unknown_label_errors() {
        let service = GridService::shared();
        let client = SteeringClient::attach(service.clone(), 0);
        let mut sim = make_sim(1);
        assert!(client.clone_into("missing", &mut sim).is_err());
    }

    #[test]
    fn frames_reach_client() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![0]);
        let client = SteeringClient::attach(service.clone(), hook.component_id());
        let mut sim = make_sim(2);
        sim.run(25, &mut [&mut hook]).unwrap();
        let latest = client.latest_frame().expect("frames pending");
        assert_eq!(latest.step, 25);
        assert!(latest.steered_com_z.is_some());
        assert!(client.next_frame().is_none(), "latest_frame drains");
    }

    #[test]
    fn detail_request_roundtrip() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![0]);
        let client = SteeringClient::attach(service.clone(), hook.component_id());
        client.request_detail();
        let mut sim = make_sim(3);
        sim.run(5, &mut [&mut hook]).unwrap();
        let f = client.next_frame().unwrap();
        assert!(f.positions.is_some(), "detailed frame carries coordinates");
        assert_eq!(f.positions.unwrap().len(), 1);
    }
}
