//! Haptic device model (§II/III).
//!
//! "here we make use of haptic devices within the framework for the first
//! time as if they were just additional computing resources" — the device
//! renders the spring force between the user's hand position and the
//! steered group, and the recorded force history is what "IMD simulations
//! are then extended to include haptic devices to get an estimate of
//! force values as well as to determine suitable constraints to place."

use spice_md::units;
use spice_md::Vec3;

/// A 1-D (pore-axis) haptic device.
#[derive(Debug, Clone)]
pub struct HapticDevice {
    /// Virtual coupling stiffness (pN/Å).
    pub stiffness_pn_per_a: f64,
    /// Force rendering saturation (pN) — real devices clip.
    pub max_force_pn: f64,
    /// Device update rate (Hz); haptics need ~1 kHz for stable feel.
    pub update_rate_hz: f64,
    /// History of rendered force magnitudes (pN).
    history: Vec<f64>,
}

impl HapticDevice {
    /// A PHANTOM-class desktop device.
    pub fn phantom() -> Self {
        HapticDevice {
            stiffness_pn_per_a: 50.0,
            max_force_pn: 500.0,
            update_rate_hz: 1000.0,
            history: Vec::new(),
        }
    }

    /// Render one update: the user holds the stylus at `hand_z`, the
    /// steered group sits at `com_z`. Returns the force to apply to the
    /// simulation (kcal mol⁻¹ Å⁻¹, z-only); records the equal-magnitude
    /// reaction force felt by the user.
    pub fn render(&mut self, hand_z: f64, com_z: f64) -> Vec3 {
        let raw_pn = self.stiffness_pn_per_a * (hand_z - com_z);
        let clipped_pn = raw_pn.clamp(-self.max_force_pn, self.max_force_pn);
        self.history.push(clipped_pn.abs());
        Vec3::new(0.0, 0.0, units::spring_pn_per_a_to_kcal(1.0) * clipped_pn)
    }

    /// Whether the force was clipped on the most recent render.
    pub fn saturated(&self) -> bool {
        self.history
            .last()
            .is_some_and(|&f| (f - self.max_force_pn).abs() < 1e-9)
    }

    /// The force estimate the paper's priming phase extracts: the maximum
    /// force (pN) encountered while manually translocating the strand.
    pub fn max_observed_force_pn(&self) -> f64 {
        self.history.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean rendered force (pN).
    pub fn mean_force_pn(&self) -> f64 {
        if self.history.is_empty() {
            0.0
        } else {
            self.history.iter().sum::<f64>() / self.history.len() as f64
        }
    }

    /// Renders per simulated second of interaction.
    pub fn renders_for(&self, seconds: f64) -> u64 {
        (self.update_rate_hz * seconds).round() as u64
    }

    /// Number of renders so far.
    pub fn render_count(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_proportional_to_displacement() {
        let mut d = HapticDevice::phantom();
        let f = d.render(10.0, 8.0); // hand 2 Å above COM
                                     // 50 pN/Å × 2 Å = 100 pN upward.
        let expected = units::spring_pn_per_a_to_kcal(1.0) * 100.0;
        assert!((f.z - expected).abs() < 1e-12);
        assert!(!d.saturated());
    }

    #[test]
    fn force_clips_at_device_limit() {
        let mut d = HapticDevice::phantom();
        let f = d.render(100.0, 0.0); // would be 5000 pN
        let expected = units::spring_pn_per_a_to_kcal(1.0) * 500.0;
        assert!((f.z - expected).abs() < 1e-12);
        assert!(d.saturated());
    }

    #[test]
    fn force_history_statistics() {
        let mut d = HapticDevice::phantom();
        d.render(1.0, 0.0); // 50 pN
        d.render(-3.0, 0.0); // 150 pN magnitude
        d.render(0.0, 0.0); // 0
        assert_eq!(d.render_count(), 3);
        assert!((d.max_observed_force_pn() - 150.0).abs() < 1e-9);
        assert!((d.mean_force_pn() - (50.0 + 150.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn update_rate_accounting() {
        let d = HapticDevice::phantom();
        assert_eq!(d.renders_for(2.5), 2500);
    }
}
