//! Interactive-MD coupling under network QoS — the T-imd experiment.
//!
//! §II: "such interactive simulations require, almost uniquely, reliable
//! bi-directional communication (…) Unreliable communication leads not
//! only to a possible loss of interactivity, but equally seriously, a
//! significant slowdown of the simulation as it stalls waiting for data
//! from the visualization."
//!
//! The model: every `steps_per_exchange` MD steps the simulation emits a
//! frame and *blocks* until the visualizer's steering packet returns
//! (the synchronous exchange of the ReG/IMD protocol). Lost packets are
//! recovered by timeout + retransmission (the TCP picture at the message
//! level). The slowdown of the 256-processor simulation is then
//! `1 + stall/compute` — directly comparable between lightpath and
//! commodity network profiles.

use serde::{Deserialize, Serialize};
use spice_gridsim::network::Path;
use spice_telemetry::Telemetry;

/// Configuration of one coupled interactive session.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ImdConfig {
    /// Wall-clock per MD step on the allocated processors (ms).
    pub step_wall_ms: f64,
    /// MD steps between synchronous exchanges.
    pub steps_per_exchange: u64,
    /// Number of exchanges to simulate.
    pub n_exchanges: u64,
    /// Outbound frame size (bytes).
    pub frame_bytes: u64,
    /// Return steering-packet size (bytes).
    pub force_bytes: u64,
    /// Visualizer processing time per frame (ms).
    pub vis_render_ms: f64,
    /// Retransmission timeout for a lost message (ms).
    pub rto_ms: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdConfig {
    fn default() -> Self {
        ImdConfig {
            step_wall_ms: 10.0,
            steps_per_exchange: 10,
            n_exchanges: 500,
            frame_bytes: 200_000,
            force_bytes: 512,
            vis_render_ms: 15.0,
            rto_ms: 200.0,
            seed: 1,
        }
    }
}

/// Result of one session.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct ImdStats {
    /// Pure compute wall time (ms).
    pub compute_ms: f64,
    /// Total time the simulation sat blocked on the network (ms).
    pub stall_ms: f64,
    /// Messages retransmitted after loss.
    pub retransmits: u64,
    /// Exchanges completed.
    pub exchanges: u64,
    /// Mean exchange round-trip (ms), including render time.
    pub mean_rtt_ms: f64,
}

impl ImdStats {
    /// Slowdown factor ≥ 1 relative to an uncoupled run.
    pub fn slowdown(&self) -> f64 {
        if self.compute_ms <= 0.0 {
            return f64::NAN;
        }
        (self.compute_ms + self.stall_ms) / self.compute_ms
    }

    /// Achieved interactive frame rate (Hz) given the total wall time.
    pub fn frame_rate_hz(&self) -> f64 {
        let total_s = (self.compute_ms + self.stall_ms) / 1e3;
        self.exchanges as f64 / total_s.max(1e-12)
    }
}

/// One-way delivery with timeout/retransmit; returns `(elapsed_ms,
/// retransmits)`.
fn deliver(path: &Path, bytes: u64, rto_ms: f64, seed: u64, msg: &mut u64) -> (f64, u64) {
    let mut elapsed = 0.0;
    let mut tries = 0u64;
    loop {
        let n = *msg;
        *msg += 1;
        if path.sample_delivery(seed, n) {
            elapsed += path.message_time_ms(bytes, seed, n);
            return (elapsed, tries);
        }
        // Lost: sender notices after the timeout and retransmits.
        elapsed += rto_ms;
        tries += 1;
        if tries > 1000 {
            // Pathological loss: give up counting further (keeps the
            // simulation total finite).
            return (elapsed, tries);
        }
    }
}

/// Simulate a coupled session over `out` (sim → vis) and `back`
/// (vis → sim) network paths.
pub fn simulate_session(cfg: &ImdConfig, out: &Path, back: &Path) -> ImdStats {
    simulate_session_traced(cfg, out, back, &Telemetry::disabled(), 0)
}

/// [`simulate_session`] that also records the session onto `t`: every
/// completed exchange becomes a `steering.exchange` instant on the
/// `("steering.session", key)` track, stamped with the session's
/// cumulative wall-clock milliseconds (compute + stall) as the logical
/// clock and annotated with that exchange's round-trip and retransmit
/// count. The inter-arrival gaps of those instants are exactly the
/// cadence signal the `spice-obs` stall detector consumes: steady on the
/// lightpath profile, retransmit-inflated on commodity IP. Also bumps
/// the `steering.exchanges` / `steering.retransmits` counters. The
/// simulated statistics are bit-identical to the untraced run.
pub fn simulate_session_traced(
    cfg: &ImdConfig,
    out: &Path,
    back: &Path,
    t: &Telemetry,
    key: u64,
) -> ImdStats {
    let track = t.track("steering.session", key);
    let mut stall = 0.0;
    let mut retransmits = 0;
    let mut rtt_sum = 0.0;
    let mut msg_out = 0u64;
    let mut msg_back = 0u64;
    let compute_per_exchange = cfg.step_wall_ms * cfg.steps_per_exchange as f64;
    for i in 0..cfg.n_exchanges {
        let (t_out, r_out) = deliver(out, cfg.frame_bytes, cfg.rto_ms, cfg.seed, &mut msg_out);
        let (t_back, r_back) = deliver(
            back,
            cfg.force_bytes,
            cfg.rto_ms,
            cfg.seed ^ 0xBACC,
            &mut msg_back,
        );
        let rtt = t_out + cfg.vis_render_ms + t_back;
        stall += rtt;
        rtt_sum += rtt;
        retransmits += r_out + r_back;
        if t.is_enabled() {
            let wall_ms = compute_per_exchange * (i + 1) as f64 + stall;
            track.instant_at(
                "steering.exchange",
                wall_ms.round() as u64,
                vec![
                    ("rtt_ms", format!("{rtt:.3}")),
                    ("retransmits", (r_out + r_back).to_string()),
                ],
            );
        }
    }
    if t.is_enabled() {
        t.counter("steering.exchanges").add(cfg.n_exchanges);
        t.counter("steering.retransmits").add(retransmits);
    }
    let compute = compute_per_exchange * cfg.n_exchanges as f64;
    ImdStats {
        compute_ms: compute,
        stall_ms: stall,
        retransmits,
        exchanges: cfg.n_exchanges,
        mean_rtt_ms: rtt_sum / cfg.n_exchanges as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_gridsim::network::QosProfile;

    fn path(p: QosProfile) -> Path {
        Path::new(vec![p.link()])
    }

    #[test]
    fn lightpath_keeps_slowdown_small() {
        let cfg = ImdConfig::default();
        let lp = path(QosProfile::TransAtlanticLightpath);
        let stats = simulate_session(&cfg, &lp, &lp);
        assert!(
            stats.slowdown() < 2.1,
            "lightpath slowdown {} should stay near 1–2 for 100 ms compute bursts",
            stats.slowdown()
        );
        assert_eq!(stats.retransmits, 0, "lossless link");
    }

    #[test]
    fn commodity_network_slows_more_than_lightpath() {
        let cfg = ImdConfig::default();
        let lp = path(QosProfile::TransAtlanticLightpath);
        let gp = path(QosProfile::TransAtlanticCommodity);
        let s_lp = simulate_session(&cfg, &lp, &lp);
        let s_gp = simulate_session(&cfg, &gp, &gp);
        assert!(
            s_gp.slowdown() > s_lp.slowdown(),
            "commodity {} vs lightpath {}",
            s_gp.slowdown(),
            s_lp.slowdown()
        );
        assert!(s_gp.retransmits > 0, "commodity loss must bite");
    }

    #[test]
    fn loss_drives_stalls_via_timeouts() {
        let mut lossy_link = QosProfile::TransAtlanticCommodity.link();
        lossy_link.loss = 0.2;
        let lossy = Path::new(vec![lossy_link]);
        let clean = path(QosProfile::TransAtlanticLightpath);
        let cfg = ImdConfig::default();
        let s_lossy = simulate_session(&cfg, &lossy, &lossy);
        let s_clean = simulate_session(&cfg, &clean, &clean);
        assert!(s_lossy.stall_ms > 2.0 * s_clean.stall_ms);
    }

    #[test]
    fn slowdown_definition() {
        let s = ImdStats {
            compute_ms: 100.0,
            stall_ms: 50.0,
            retransmits: 0,
            exchanges: 10,
            mean_rtt_ms: 5.0,
        };
        assert!((s.slowdown() - 1.5).abs() < 1e-12);
        assert!((s.frame_rate_hz() - 10.0 / 0.15).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ImdConfig::default();
        let p = path(QosProfile::TransAtlanticCommodity);
        let a = simulate_session(&cfg, &p, &p);
        let b = simulate_session(&cfg, &p, &p);
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 2;
        let c = simulate_session(&cfg2, &p, &p);
        assert_ne!(a.stall_ms, c.stall_ms);
    }

    #[test]
    fn traced_session_matches_untraced_bit_for_bit() {
        let cfg = ImdConfig::default();
        let p = path(QosProfile::TransAtlanticCommodity);
        let t = Telemetry::enabled();
        let traced = simulate_session_traced(&cfg, &p, &p, &t, 7);
        let plain = simulate_session(&cfg, &p, &p);
        assert_eq!(traced, plain);

        let snap = t.snapshot();
        let track = snap
            .tracks
            .iter()
            .find(|tr| tr.name == "steering.session" && tr.key == 7)
            .expect("session track exists");
        let instants: Vec<u64> = track
            .events
            .iter()
            .filter(|e| e.name == "steering.exchange")
            .map(|e| e.logical)
            .collect();
        assert_eq!(instants.len(), cfg.n_exchanges as usize);
        assert!(
            instants.windows(2).all(|w| w[1] > w[0]),
            "exchange stamps strictly increase"
        );
        let exchanges = snap
            .metrics
            .iter()
            .find(|(n, _)| n == "steering.exchanges")
            .map(|(_, v)| v.clone());
        assert_eq!(
            exchanges,
            Some(spice_telemetry::MetricValue::Counter(cfg.n_exchanges))
        );
    }

    #[test]
    fn faster_exchange_cadence_amplifies_network_sensitivity() {
        // Exchanging every step (fine-grained interactivity) stalls more
        // than exchanging every 100 steps, relative to compute.
        let p = path(QosProfile::TransAtlanticCommodity);
        let fine = ImdConfig {
            steps_per_exchange: 1,
            ..ImdConfig::default()
        };
        let coarse = ImdConfig {
            steps_per_exchange: 100,
            ..ImdConfig::default()
        };
        let s_fine = simulate_session(&fine, &p, &p);
        let s_coarse = simulate_session(&coarse, &p, &p);
        assert!(s_fine.slowdown() > s_coarse.slowdown());
    }
}
