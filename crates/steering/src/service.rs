//! The intermediate grid service of Fig. 2a.
//!
//! Components (simulations, visualizers, steering clients, haptic
//! bridges) register and exchange messages through per-component routed
//! queues. The service also hosts the checkpoint store used by the
//! checkpoint & clone workflow.
//!
//! The service is shared across threads ([`SharedService`]) because the
//! steering client genuinely runs concurrently with the simulation —
//! exactly the paper's deployment, where the scientist steers a live run.

use crate::message::{ControlMessage, Frame};
use parking_lot::Mutex;
use spice_md::checkpoint::Snapshot;
use spice_telemetry::{ProbePoint, Telemetry, Track};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Registered component handle.
pub type ComponentId = u32;

/// One routed-message record in the session log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Monotone sequence number.
    pub seq: u64,
    /// Destination component.
    pub to: ComponentId,
    /// Short kind tag ("control:Pause", "frame", …). Static: every
    /// message kind is known at compile time, so logging never allocates.
    pub kind: &'static str,
}

/// Kinds of components in the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A running simulation.
    Simulation,
    /// A visualization engine.
    Visualizer,
    /// A scientist's steering client.
    SteeringClient,
    /// A haptic bridge.
    Haptic,
}

/// The registry + router + checkpoint store.
pub struct GridService {
    next_id: ComponentId,
    kinds: HashMap<ComponentId, ComponentKind>,
    control: HashMap<ComponentId, VecDeque<ControlMessage>>,
    frames: HashMap<ComponentId, VecDeque<Frame>>,
    checkpoints: HashMap<String, Snapshot>,
    delivered: u64,
    /// Bounded session log of routed messages (newest kept).
    log: VecDeque<LogEntry>,
    log_capacity: usize,
    flows: HashMap<ComponentId, ClientFlow>,
    /// Largest backlog any client has ever had.
    watermark: u64,
    telemetry: Telemetry,
    track: Track,
}

/// Thread-shared service handle.
pub type SharedService = Arc<Mutex<GridService>>;

fn control_kind(msg: &ControlMessage) -> &'static str {
    match msg {
        ControlMessage::Pause => "control:Pause",
        ControlMessage::Resume => "control:Resume",
        ControlMessage::Stop => "control:Stop",
        ControlMessage::SetParam { .. } => "control:SetParam",
        ControlMessage::Checkpoint { .. } => "control:Checkpoint",
        ControlMessage::ApplyForce { .. } => "control:ApplyForce",
        ControlMessage::RequestFrame => "control:RequestFrame",
    }
}

/// Per-kind message counter name. Every kind maps to a lowercase
/// dot-separated literal known at compile time, so the registry export
/// stays deterministic and diff-able (spice-lint M001).
fn kind_counter_name(kind: &'static str) -> &'static str {
    match kind {
        "control:Pause" => "steering.messages.control.pause",
        "control:Resume" => "steering.messages.control.resume",
        "control:Stop" => "steering.messages.control.stop",
        "control:SetParam" => "steering.messages.control.set_param",
        "control:Checkpoint" => "steering.messages.control.checkpoint",
        "control:ApplyForce" => "steering.messages.control.apply_force",
        "control:RequestFrame" => "steering.messages.control.request_frame",
        _ => "steering.messages.frame",
    }
}

/// Queue-depth histogram buckets for `steering.client_lag`.
const CLIENT_LAG_BOUNDS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Per-client delivery-flow accounting.
#[derive(Debug, Default, Clone, Copy)]
struct ClientFlow {
    /// Messages routed to this client (control + frames).
    enqueued: u64,
    /// Messages the client has drained.
    consumed: u64,
    /// High-watermark of the backlog (`enqueued - consumed`).
    watermark: u64,
    /// Watermark value at the last telemetry instant; the next instant
    /// fires when the watermark at least doubles, bounding event volume
    /// to O(log backlog) per client.
    emitted: u64,
}

impl Default for GridService {
    fn default() -> Self {
        Self::new()
    }
}

impl GridService {
    /// Empty service.
    pub fn new() -> Self {
        GridService {
            next_id: 0,
            kinds: HashMap::new(),
            control: HashMap::new(),
            frames: HashMap::new(),
            checkpoints: HashMap::new(),
            delivered: 0,
            log: VecDeque::new(),
            log_capacity: 4096,
            flows: HashMap::new(),
            watermark: 0,
            telemetry: Telemetry::disabled(),
            track: Track::disabled(),
        }
    }

    /// Attach telemetry: every routed message becomes a
    /// `steering.message` instant on the `("steering.service", 0)` track
    /// (the logical clock is the delivered-message sequence number),
    /// bumps the `steering.messages` counter plus a per-kind counter
    /// (static lowercase names — see [`kind_counter_name`]), and fires
    /// the `SteeringMessage` probe. Delivery-flow accounting also
    /// exports: the `steering.client_lag` histogram (queue depth seen by
    /// each enqueue), the `steering.backlog_watermark` gauge (largest
    /// backlog any client ever had), and per-client
    /// `("steering.client", id)` tracks carrying a `steering.backlog`
    /// instant whenever that client's watermark at least doubles.
    /// Routing behaviour is unchanged.
    pub fn set_telemetry(&mut self, t: &Telemetry) {
        self.telemetry = t.clone();
        self.track = t.track("steering.service", 0);
    }

    /// Wrap in a thread-shared handle.
    pub fn shared() -> SharedService {
        Arc::new(Mutex::new(Self::new()))
    }

    /// Register a component; returns its id.
    pub fn register(&mut self, kind: ComponentKind) -> ComponentId {
        let id = self.next_id;
        self.next_id += 1;
        self.kinds.insert(id, kind);
        self.control.insert(id, VecDeque::new());
        self.frames.insert(id, VecDeque::new());
        id
    }

    /// Component kind lookup.
    pub fn kind(&self, id: ComponentId) -> Option<ComponentKind> {
        self.kinds.get(&id).copied()
    }

    /// Send a control message to a component.
    ///
    /// # Panics
    /// Panics for unknown targets (protocol error).
    pub fn send_control(&mut self, to: ComponentId, msg: ControlMessage) {
        let kind = control_kind(&msg);
        self.control
            .get_mut(&to)
            .expect("unknown control target")
            .push_back(msg);
        self.delivered += 1;
        self.log_entry(to, kind);
    }

    /// Drain all pending control messages for a component.
    pub fn poll_control(&mut self, id: ComponentId) -> Vec<ControlMessage> {
        let msgs: Vec<ControlMessage> = self
            .control
            .get_mut(&id)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        self.note_consumed(id, msgs.len() as u64);
        msgs
    }

    /// Publish a frame to every registered visualizer and steering client.
    pub fn publish_frame(&mut self, frame: &Frame) {
        let targets: Vec<ComponentId> = self
            .kinds
            .iter()
            .filter(|(_, k)| matches!(k, ComponentKind::Visualizer | ComponentKind::SteeringClient))
            .map(|(&id, _)| id)
            .collect();
        for id in targets {
            self.frames
                .get_mut(&id)
                .expect("registered component has a queue")
                .push_back(frame.clone());
            self.delivered += 1;
            self.log_entry(id, "frame");
        }
    }

    fn log_entry(&mut self, to: ComponentId, kind: &'static str) {
        if self.log.len() == self.log_capacity {
            self.log.pop_front();
        }
        self.log.push_back(LogEntry {
            seq: self.delivered,
            to,
            kind,
        });
        self.note_enqueued(to);
        if self.telemetry.is_enabled() {
            self.track.tick(self.delivered);
            self.track.instant_at(
                "steering.message",
                self.delivered,
                vec![("kind", kind.to_string()), ("to", to.to_string())],
            );
            self.telemetry.counter("steering.messages").incr();
            self.telemetry.counter(kind_counter_name(kind)).incr();
            self.telemetry
                .probe(ProbePoint::SteeringMessage, self.delivered, f64::from(to));
        }
    }

    /// Account one message landing in `to`'s queues and export the
    /// backlog signals the stall detector consumes.
    fn note_enqueued(&mut self, to: ComponentId) {
        let flow = self.flows.entry(to).or_default();
        flow.enqueued += 1;
        let backlog = flow.enqueued - flow.consumed;
        let new_watermark = backlog > flow.watermark;
        flow.watermark = flow.watermark.max(backlog);
        let emit = new_watermark && flow.watermark >= flow.emitted.saturating_mul(2).max(1);
        if emit {
            flow.emitted = flow.watermark;
        }
        let watermark = flow.watermark;
        self.watermark = self.watermark.max(watermark);
        if self.telemetry.is_enabled() {
            self.telemetry
                .histogram("steering.client_lag", &CLIENT_LAG_BOUNDS)
                .observe(backlog as f64);
            self.telemetry
                .set_gauge("steering.backlog_watermark", self.watermark as f64);
            if emit {
                let track = self.telemetry.track("steering.client", u64::from(to));
                track.tick(self.delivered);
                track.instant_at(
                    "steering.backlog",
                    self.delivered,
                    vec![("depth", watermark.to_string())],
                );
            }
        }
    }

    /// Account `n` messages drained by client `id`.
    fn note_consumed(&mut self, id: ComponentId, n: u64) {
        if n > 0 {
            self.flows.entry(id).or_default().consumed += n;
        }
    }

    /// Messages currently queued (control + frames) for a client.
    pub fn client_backlog(&self, id: ComponentId) -> u64 {
        self.flows.get(&id).map_or(0, |f| f.enqueued - f.consumed)
    }

    /// The largest backlog this client has ever had.
    pub fn client_backlog_watermark(&self, id: ComponentId) -> u64 {
        self.flows.get(&id).map_or(0, |f| f.watermark)
    }

    /// The largest backlog any client has ever had.
    pub fn backlog_watermark(&self) -> u64 {
        self.watermark
    }

    /// The routed-message session log (bounded; newest entries kept).
    pub fn session_log(&self) -> impl Iterator<Item = &LogEntry> {
        self.log.iter()
    }

    /// Per-kind counts in the session log.
    pub fn log_summary(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for e in &self.log {
            *counts.entry(e.kind).or_default() += 1;
        }
        counts.into_iter().collect()
    }

    /// Pop the oldest pending frame for a component.
    pub fn next_frame(&mut self, id: ComponentId) -> Option<Frame> {
        let frame = self.frames.get_mut(&id).and_then(|q| q.pop_front());
        if frame.is_some() {
            self.note_consumed(id, 1);
        }
        frame
    }

    /// Store a checkpoint under its label.
    pub fn store_checkpoint(&mut self, label: impl Into<String>, snap: Snapshot) {
        self.checkpoints.insert(label.into(), snap);
    }

    /// Retrieve a stored checkpoint.
    pub fn checkpoint(&self, label: &str) -> Option<&Snapshot> {
        self.checkpoints.get(label)
    }

    /// Labels of all stored checkpoints.
    pub fn checkpoint_labels(&self) -> Vec<String> {
        let mut v: Vec<String> = self.checkpoints.keys().cloned().collect();
        v.sort();
        v
    }

    /// Total messages routed (diagnostics).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_route_control() {
        let mut s = GridService::new();
        let sim = s.register(ComponentKind::Simulation);
        let cli = s.register(ComponentKind::SteeringClient);
        assert_ne!(sim, cli);
        assert_eq!(s.kind(sim), Some(ComponentKind::Simulation));

        s.send_control(sim, ControlMessage::Pause);
        s.send_control(sim, ControlMessage::Resume);
        let msgs = s.poll_control(sim);
        assert_eq!(msgs, vec![ControlMessage::Pause, ControlMessage::Resume]);
        assert!(s.poll_control(sim).is_empty(), "poll drains");
        assert!(s.poll_control(cli).is_empty());
    }

    #[test]
    fn frames_fan_out_to_observers_only() {
        let mut s = GridService::new();
        let sim = s.register(ComponentKind::Simulation);
        let vis = s.register(ComponentKind::Visualizer);
        let cli = s.register(ComponentKind::SteeringClient);
        let frame = Frame {
            step: 10,
            time_ps: 0.1,
            temperature: 300.0,
            potential: -1.0,
            steered_com_z: None,
            positions: None,
        };
        s.publish_frame(&frame);
        assert_eq!(s.next_frame(vis).unwrap().step, 10);
        assert_eq!(s.next_frame(cli).unwrap().step, 10);
        assert!(
            s.next_frame(sim).is_none(),
            "simulations do not receive frames"
        );
        assert!(s.next_frame(vis).is_none(), "one frame per publish");
    }

    #[test]
    fn checkpoint_store_roundtrip() {
        use spice_md::forces::ForceField;
        use spice_md::integrate::VelocityVerlet;
        use spice_md::{Simulation, System, Topology, Vec3};
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let sim = Simulation::new(
            sys,
            ForceField::new(Topology::new()),
            Box::new(VelocityVerlet),
            0.01,
        );
        let snap = Snapshot::capture(&sim, "x");
        let mut s = GridService::new();
        s.store_checkpoint("pre-pull", snap.clone());
        assert_eq!(s.checkpoint("pre-pull"), Some(&snap));
        assert!(s.checkpoint("nope").is_none());
        assert_eq!(s.checkpoint_labels(), vec!["pre-pull".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown control target")]
    fn unknown_target_panics() {
        let mut s = GridService::new();
        s.send_control(99, ControlMessage::Pause);
    }

    #[test]
    fn session_log_records_and_summarizes() {
        let mut s = GridService::new();
        let sim = s.register(ComponentKind::Simulation);
        let _vis = s.register(ComponentKind::Visualizer);
        s.send_control(sim, ControlMessage::Pause);
        s.send_control(sim, ControlMessage::Resume);
        s.publish_frame(&Frame {
            step: 0,
            time_ps: 0.0,
            temperature: 0.0,
            potential: 0.0,
            steered_com_z: None,
            positions: None,
        });
        let summary = s.log_summary();
        assert!(summary.contains(&("control:Pause", 1)));
        assert!(summary.contains(&("control:Resume", 1)));
        assert!(summary.contains(&("frame", 1)));
        assert_eq!(s.session_log().count(), 3);
        // Sequence numbers strictly increase.
        let seqs: Vec<u64> = s.session_log().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn session_log_is_bounded() {
        let mut s = GridService::new();
        let sim = s.register(ComponentKind::Simulation);
        for _ in 0..5000 {
            s.send_control(sim, ControlMessage::Pause);
            s.poll_control(sim);
        }
        assert_eq!(s.session_log().count(), 4096);
    }

    #[test]
    fn backlog_accounting_tracks_queue_depth() {
        let mut s = GridService::new();
        let sim = s.register(ComponentKind::Simulation);
        let cli = s.register(ComponentKind::SteeringClient);
        for _ in 0..5 {
            s.send_control(sim, ControlMessage::Pause);
        }
        assert_eq!(s.client_backlog(sim), 5);
        assert_eq!(s.client_backlog_watermark(sim), 5);
        assert_eq!(s.backlog_watermark(), 5);
        s.poll_control(sim);
        assert_eq!(s.client_backlog(sim), 0, "drain consumes the backlog");
        assert_eq!(s.client_backlog_watermark(sim), 5, "watermark is sticky");
        // Frames count against the observers' flows.
        s.publish_frame(&Frame {
            step: 0,
            time_ps: 0.0,
            temperature: 0.0,
            potential: 0.0,
            steered_com_z: None,
            positions: None,
        });
        assert_eq!(s.client_backlog(cli), 1);
        s.next_frame(cli);
        assert_eq!(s.client_backlog(cli), 0);
        assert_eq!(s.client_backlog(99), 0, "unknown clients have no backlog");
    }

    #[test]
    fn telemetry_exports_backlog_and_per_kind_counters() {
        use spice_telemetry::{MetricValue, Telemetry};
        let t = Telemetry::enabled();
        let mut s = GridService::new();
        s.set_telemetry(&t);
        let sim = s.register(ComponentKind::Simulation);
        let _vis = s.register(ComponentKind::Visualizer);
        for _ in 0..3 {
            s.send_control(sim, ControlMessage::Pause);
        }
        s.send_control(sim, ControlMessage::Resume);
        s.publish_frame(&Frame {
            step: 0,
            time_ps: 0.0,
            temperature: 0.0,
            potential: 0.0,
            steered_com_z: None,
            positions: None,
        });
        let snap = t.snapshot();
        let metric = |name: &str| {
            snap.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            metric("steering.messages.control.pause"),
            Some(MetricValue::Counter(3)),
            "per-kind counters use static lowercase names"
        );
        assert_eq!(
            metric("steering.messages.control.resume"),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            metric("steering.messages.frame"),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            metric("steering.backlog_watermark"),
            Some(MetricValue::Gauge(4.0)),
            "sim backlog peaked at 4 queued control messages"
        );
        assert!(
            matches!(
                metric("steering.client_lag"),
                Some(MetricValue::Histogram { .. })
            ),
            "queue-depth histogram exports"
        );
        // Watermark doublings leave per-client instants: depths 1, 2, 4.
        let client_track = snap
            .tracks
            .iter()
            .find(|tr| tr.name == "steering.client" && tr.key == u64::from(sim))
            .expect("per-client track exists");
        let depths: Vec<&str> = client_track
            .events
            .iter()
            .filter(|e| e.name == "steering.backlog")
            .map(|e| e.attrs[0].1.as_str())
            .collect();
        assert_eq!(depths, ["1", "2", "4"]);
    }

    #[test]
    fn delivered_counts_messages() {
        let mut s = GridService::new();
        let sim = s.register(ComponentKind::Simulation);
        let _vis = s.register(ComponentKind::Visualizer);
        s.send_control(sim, ControlMessage::Pause);
        s.publish_frame(&Frame {
            step: 0,
            time_ps: 0.0,
            temperature: 0.0,
            potential: 0.0,
            steered_com_z: None,
            positions: None,
        });
        assert_eq!(s.delivered(), 2);
    }
}
