//! The sim-side steering library: a [`StepHook`] attached to the MD
//! driver's emit points.
//!
//! This mirrors how the paper grid-enables NAMD: "interfacing the
//! application codes to suitable grid middleware through well defined
//! user-level APIs (…) complex parallel code can be grid-enabled without
//! changing the programming model and with minimal changes to the code"
//! (§V-B). The MD engine knows only that a hook runs every few steps; all
//! grid behaviour lives here.

use crate::message::{ControlMessage, Frame};
use crate::service::{ComponentId, ComponentKind, SharedService};
use spice_md::checkpoint::Snapshot;
use spice_md::{units, HookAction, HookContext, StepHook};
use std::collections::HashMap;

/// Steering hook state.
pub struct SteeringHook {
    service: SharedService,
    id: ComponentId,
    emit_stride: u64,
    /// Atom group whose COM z is published (the steered DNA).
    steered_group: Vec<usize>,
    paused: bool,
    stopped: bool,
    detail_next: bool,
    params: HashMap<String, f64>,
    frames_emitted: u64,
    forces_applied: u64,
    /// Give up on a pause after this many polls (None = wait forever).
    /// Tests drive pause/resume from another thread; production uses None.
    pub pause_poll_limit: Option<u64>,
}

impl SteeringHook {
    /// Register a simulation component on `service` and build its hook.
    /// Frames are emitted every `emit_stride` steps.
    pub fn attach(service: SharedService, emit_stride: u64, steered_group: Vec<usize>) -> Self {
        assert!(emit_stride > 0, "emit stride must be positive");
        let id = service.lock().register(ComponentKind::Simulation);
        SteeringHook {
            service,
            id,
            emit_stride,
            steered_group,
            paused: false,
            stopped: false,
            detail_next: false,
            params: HashMap::new(),
            frames_emitted: 0,
            forces_applied: 0,
            pause_poll_limit: None,
        }
    }

    /// This simulation's component id (steering clients address it).
    pub fn component_id(&self) -> ComponentId {
        self.id
    }

    /// Steerable parameters set so far (name → value).
    pub fn params(&self) -> &HashMap<String, f64> {
        &self.params
    }

    /// Frames published so far.
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }

    /// IMD forces applied so far.
    pub fn forces_applied(&self) -> u64 {
        self.forces_applied
    }

    /// True once a Stop was processed.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    fn handle(&mut self, msg: ControlMessage, ctx: &mut HookContext<'_>) {
        match msg {
            ControlMessage::Pause => self.paused = true,
            ControlMessage::Resume => self.paused = false,
            ControlMessage::Stop => self.stopped = true,
            ControlMessage::SetParam { name, value } => {
                self.params.insert(name, value);
            }
            ControlMessage::Checkpoint { label } => {
                let snap = Snapshot {
                    schema: spice_md::checkpoint::SNAPSHOT_SCHEMA_VERSION,
                    step: ctx.step,
                    time_ps: ctx.time_ps,
                    system: ctx.system.clone(),
                    label: label.clone(),
                };
                self.service.lock().store_checkpoint(label, snap);
            }
            ControlMessage::ApplyForce { atoms, force } => {
                // IMD forces arrive at emit points; apply the equivalent
                // impulse for one emit interval: Δv = F/m · Δt · ACCEL.
                let dt_interval = self.emit_stride as f64
                    * if ctx.step > 0 {
                        ctx.time_ps / ctx.step as f64
                    } else {
                        0.0
                    };
                for &i in &atoms {
                    if i < ctx.system.len() {
                        let inv_m = ctx.system.inv_masses()[i];
                        ctx.system.velocities_mut()[i] +=
                            force * (inv_m * dt_interval * units::ACCEL);
                    }
                }
                self.forces_applied += 1;
            }
            ControlMessage::RequestFrame => self.detail_next = true,
        }
    }

    fn emit_frame(&mut self, ctx: &HookContext<'_>) {
        let com_z = if self.steered_group.is_empty() {
            None
        } else {
            Some(
                ctx.system
                    .center_of_mass_of(self.steered_group.iter().copied())
                    .z,
            )
        };
        let frame = Frame {
            step: ctx.step,
            time_ps: ctx.time_ps,
            temperature: ctx.system.temperature(),
            potential: ctx.energies.total(),
            steered_com_z: com_z,
            positions: if self.detail_next {
                Some(ctx.system.positions().to_vec())
            } else {
                None
            },
        };
        self.detail_next = false;
        self.service.lock().publish_frame(&frame);
        self.frames_emitted += 1;
    }
}

impl StepHook for SteeringHook {
    fn on_step(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
        if !ctx.step.is_multiple_of(self.emit_stride) {
            return HookAction::Continue;
        }
        // Emit point: drain control, publish, honour pause.
        let msgs = self.service.lock().poll_control(self.id);
        for m in msgs {
            self.handle(m, ctx);
        }
        self.emit_frame(ctx);
        let mut polls = 0u64;
        while self.paused && !self.stopped {
            let msgs = self.service.lock().poll_control(self.id);
            for m in msgs {
                self.handle(m, ctx);
            }
            polls += 1;
            if let Some(limit) = self.pause_poll_limit {
                if polls >= limit {
                    self.paused = false;
                    break;
                }
            }
            std::thread::yield_now();
        }
        if self.stopped {
            HookAction::Stop
        } else {
            HookAction::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::GridService;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::integrate::LangevinBaoab;
    use spice_md::{Simulation, System, Topology, Vec3};

    fn make_sim(seed: u64) -> Simulation {
        let mut sys = System::new();
        for i in 0..3 {
            sys.add_particle(Vec3::new(i as f64, 0.0, 0.0), 10.0, 0.0, 0);
        }
        let mut ff = ForceField::new(Topology::new());
        for i in 0..3 {
            ff = ff.with_restraint(Restraint::harmonic(i, Vec3::new(i as f64, 0.0, 0.0), 1.0));
        }
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 2.0, seed)),
            0.01,
        )
    }

    #[test]
    fn frames_emitted_at_stride() {
        let service = GridService::shared();
        let vis = service.lock().register(ComponentKind::Visualizer);
        let mut hook = SteeringHook::attach(service.clone(), 10, vec![0, 1]);
        let mut sim = make_sim(1);
        sim.run(100, &mut [&mut hook]).unwrap();
        assert_eq!(hook.frames_emitted(), 10);
        let mut got = 0;
        while service.lock().next_frame(vis).is_some() {
            got += 1;
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn stop_message_halts_run() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![]);
        service
            .lock()
            .send_control(hook.component_id(), ControlMessage::Stop);
        let mut sim = make_sim(2);
        let done = sim.run(100, &mut [&mut hook]).unwrap();
        assert_eq!(done, 5, "stopped at the first emit point");
        assert!(hook.stopped());
    }

    #[test]
    fn set_param_recorded() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![]);
        service.lock().send_control(
            hook.component_id(),
            ControlMessage::SetParam {
                name: "kappa".into(),
                value: 1.44,
            },
        );
        let mut sim = make_sim(3);
        sim.run(10, &mut [&mut hook]).unwrap();
        assert_eq!(hook.params().get("kappa"), Some(&1.44));
    }

    #[test]
    fn checkpoint_message_stores_snapshot() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![]);
        service.lock().send_control(
            hook.component_id(),
            ControlMessage::Checkpoint {
                label: "probe".into(),
            },
        );
        let mut sim = make_sim(4);
        sim.run(10, &mut [&mut hook]).unwrap();
        let snap = service.lock().checkpoint("probe").cloned().unwrap();
        assert_eq!(snap.step, 5, "captured at the emit point");
        assert_eq!(snap.system.len(), 3);
    }

    #[test]
    fn imd_force_changes_momentum() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![0]);
        service.lock().send_control(
            hook.component_id(),
            ControlMessage::ApplyForce {
                atoms: vec![0],
                force: Vec3::new(0.0, 0.0, 50.0),
            },
        );
        let mut with_force = make_sim(5);
        with_force.run(10, &mut [&mut hook]).unwrap();
        let mut without = make_sim(5);
        without.run(10, &mut []).unwrap();
        assert_eq!(hook.forces_applied(), 1);
        assert!(
            with_force.system().positions()[0].z > without.system().positions()[0].z,
            "upward IMD force must displace atom 0"
        );
    }

    #[test]
    fn pause_with_poll_limit_resumes() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![]);
        hook.pause_poll_limit = Some(3);
        service
            .lock()
            .send_control(hook.component_id(), ControlMessage::Pause);
        let mut sim = make_sim(6);
        let done = sim.run(20, &mut [&mut hook]).unwrap();
        assert_eq!(done, 20, "poll-limited pause must not hang the run");
    }

    #[test]
    fn pause_resume_across_threads() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![]);
        let sim_id = hook.component_id();
        service.lock().send_control(sim_id, ControlMessage::Pause);
        // The "scientist" resumes from another thread shortly after.
        let svc = service.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            svc.lock().send_control(sim_id, ControlMessage::Resume);
        });
        let mut sim = make_sim(7);
        let done = sim.run(20, &mut [&mut hook]).unwrap();
        t.join().unwrap();
        assert_eq!(done, 20, "run completes after remote resume");
    }
}
