//! # spice-steering
//!
//! A RealityGrid-style computational steering framework (Fig. 2): the
//! grid middleware layer that couples running simulations, visualizers,
//! steering clients and haptic devices "within the same framework".
//!
//! Architecture (mirroring Fig. 2a):
//!
//! ```text
//!  steering client ──┐
//!                    ├──▶ grid service (registry + routed queues) ◀──▶ simulation
//!  visualizer ───────┘         ▲                                        (sim-side
//!        └─────────────────────┴──── direct vis → sim channel           library =
//!                                     (dotted arrows in Fig. 2a)        StepHook)
//! ```
//!
//! * [`message`] — the steering protocol: control verbs (pause/resume,
//!   set-parameter, checkpoint, clone, stop), IMD force injection, and
//!   published data frames.
//! * [`service`] — the intermediate grid service: component registry and
//!   per-component routed message queues, with optional simulated network
//!   delay per route.
//! * [`client`] — the scientist's steering API.
//! * [`sim_side`] — the client-side library embedded in the MD code, as a
//!   `spice_md::StepHook` attached at "emit points" — the paper's
//!   grid-enablement without refactoring (§V-B).
//! * [`visualizer`] — consumes frames, turns user/haptic input into
//!   steering forces (the visualizer-as-steerer of §II).
//! * [`haptic`] — the haptic device model (§III: force estimates and
//!   constraint discovery).
//! * [`imd`] — the coupled interactive-MD loop simulator used for the
//!   QoS study (T-imd): stall and slowdown of a blocking bidirectional
//!   exchange under latency/jitter/loss, lightpath vs commodity network.

#![warn(missing_docs)]

pub mod client;
pub mod haptic;
pub mod imd;
pub mod message;
pub mod service;
pub mod sim_side;
pub mod visualizer;

pub use client::SteeringClient;
pub use haptic::HapticDevice;
pub use imd::{simulate_session, simulate_session_traced, ImdConfig, ImdStats};
pub use message::{ControlMessage, Frame};
pub use service::{ComponentId, GridService, LogEntry, SharedService};
pub use sim_side::SteeringHook;
pub use visualizer::Visualizer;
