//! The visualization engine as a steerer (§II).
//!
//! "Interactive simulations use a visualizer as a steerer, e.g., to apply
//! a force to a subset of atoms" — Fig. 2a's dotted direct channel from
//! the visualizer back to the simulation.

use crate::haptic::HapticDevice;
use crate::message::{ControlMessage, Frame};
use crate::service::{ComponentId, ComponentKind, SharedService};
use spice_md::Vec3;

/// A visualizer component: consumes frames, renders, and (optionally via
/// a haptic device) sends steering forces directly to the simulation.
pub struct Visualizer {
    service: SharedService,
    id: ComponentId,
    sim: ComponentId,
    frames_rendered: u64,
    /// Attached haptic device, if any.
    pub haptic: Option<HapticDevice>,
}

impl Visualizer {
    /// Register a visualizer on `service`, coupled to simulation `sim`.
    pub fn attach(service: SharedService, sim: ComponentId) -> Self {
        let id = service.lock().register(ComponentKind::Visualizer);
        Visualizer {
            service,
            id,
            sim,
            frames_rendered: 0,
            haptic: None,
        }
    }

    /// Attach a haptic device.
    pub fn with_haptic(mut self, device: HapticDevice) -> Self {
        self.haptic = Some(device);
        self
    }

    /// This visualizer's component id.
    pub fn component_id(&self) -> ComponentId {
        self.id
    }

    /// Frames rendered so far.
    pub fn frames_rendered(&self) -> u64 {
        self.frames_rendered
    }

    /// Consume the next pending frame, if any ("rendering" = counting +
    /// returning it for inspection).
    pub fn render_next(&mut self) -> Option<Frame> {
        let f = self.service.lock().next_frame(self.id);
        if f.is_some() {
            self.frames_rendered += 1;
        }
        f
    }

    /// The visualizer-as-steerer loop body: render the latest frame and,
    /// if a haptic device is attached, send the device force on `atoms`
    /// toward `hand_z` through the *direct* channel. Returns the rendered
    /// frame.
    pub fn steer_with_haptic(&mut self, atoms: &[usize], hand_z: f64) -> Option<Frame> {
        let frame = self.render_next()?;
        if let (Some(device), Some(com_z)) = (self.haptic.as_mut(), frame.steered_com_z) {
            let force = device.render(hand_z, com_z);
            self.service.lock().send_control(
                self.sim,
                ControlMessage::ApplyForce {
                    atoms: atoms.to_vec(),
                    force,
                },
            );
        }
        Some(frame)
    }

    /// Plain (non-haptic) steering: nudge `atoms` with `force` directly.
    pub fn steer(&self, atoms: Vec<usize>, force: Vec3) {
        self.service
            .lock()
            .send_control(self.sim, ControlMessage::ApplyForce { atoms, force });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::GridService;
    use crate::sim_side::SteeringHook;
    use spice_md::forces::{ForceField, Restraint};
    use spice_md::integrate::LangevinBaoab;
    use spice_md::{Simulation, System, Topology};

    fn make_sim(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 10.0, 0.0, 0);
        let ff = ForceField::new(Topology::new()).with_restraint(Restraint::harmonic(
            0,
            Vec3::zero(),
            0.5,
        ));
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 2.0, seed)),
            0.01,
        )
    }

    #[test]
    fn renders_published_frames() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![0]);
        let mut vis = Visualizer::attach(service.clone(), hook.component_id());
        let mut sim = make_sim(1);
        sim.run(20, &mut [&mut hook]).unwrap();
        let mut count = 0;
        while vis.render_next().is_some() {
            count += 1;
        }
        assert_eq!(count, 4);
        assert_eq!(vis.frames_rendered(), 4);
    }

    #[test]
    fn haptic_steering_closed_loop_pulls_atom() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![0]);
        let mut vis = Visualizer::attach(service.clone(), hook.component_id())
            .with_haptic(HapticDevice::phantom());
        let mut sim = make_sim(2);
        // Closed loop: run a burst, render, steer upward, repeat — the
        // scientist dragging the strand with the stylus. The restrained
        // atom oscillates, so judge by the peak excursion.
        let mut max_z = f64::NEG_INFINITY;
        for _ in 0..20 {
            sim.run(5, &mut [&mut hook]).unwrap();
            while vis.steer_with_haptic(&[0], 5.0).is_some() {}
            max_z = max_z.max(sim.system().positions()[0].z);
        }
        assert!(
            max_z > 0.5,
            "haptic dragging must displace the atom upward: peak z = {max_z}"
        );
        let device = vis.haptic.as_ref().unwrap();
        assert!(device.max_observed_force_pn() > 0.0);
    }

    #[test]
    fn direct_steering_without_haptic() {
        let service = GridService::shared();
        let mut hook = SteeringHook::attach(service.clone(), 5, vec![0]);
        let vis = Visualizer::attach(service.clone(), hook.component_id());
        vis.steer(vec![0], Vec3::new(0.0, 0.0, 30.0));
        let mut sim = make_sim(3);
        sim.run(10, &mut [&mut hook]).unwrap();
        assert_eq!(hook.forces_applied(), 1);
    }
}
