//! Property tests for the log-bucketed histogram: merge must be a
//! commutative, associative fold over any sharding of the sample
//! multiset, and quantiles must track a naive sorted-vector oracle to
//! within one sub-bucket of relative error.

use proptest::prelude::*;
use spice_obs::LogHistogram;

/// Positive samples spanning ~18 decades, the registry's working range
/// (sub-millisecond ticks up to campaign CPU-hour totals).
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-9.0f64..9.0).prop_map(|e| 10f64.powf(e)), 1..200)
}

/// Deterministic in-place Fisher-Yates from a splitmix-style stream, so
/// the permutation is a pure function of the generated seed.
fn shuffle(xs: &mut [f64], mut seed: u64) {
    for i in (1..xs.len()).rev() {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}

fn record_all(xs: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &x in xs {
        h.record(x);
    }
    h
}

/// Nearest-rank quantile over the raw samples: `sorted[ceil(q·n) - 1]`,
/// the definition `LogHistogram::quantile` approximates bucket-wise.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One sub-bucket spans a ratio of 2^(1/8), so the midpoint estimate is
/// within (2^(1/8) - 1)/2 ≈ 4.6% of any sample in the bucket.
const BUCKET_REL_TOL: f64 = 0.05;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any sharding of the samples, with shards themselves recorded and
    /// merged in a permuted order, folds to the exact same histogram as
    /// one pass over the original sequence.
    #[test]
    fn merge_is_permutation_and_sharding_invariant(
        xs in arb_samples(),
        seed in 0u64..u64::MAX,
        n_shards in 1usize..8,
    ) {
        let reference = record_all(&xs);

        let mut permuted = xs.clone();
        shuffle(&mut permuted, seed);
        let chunk = permuted.len().div_ceil(n_shards);
        let mut shards: Vec<LogHistogram> =
            permuted.chunks(chunk).map(record_all).collect();
        shuffle_shards(&mut shards, seed ^ 0xABCD);

        let mut merged = LogHistogram::new();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(&merged, &reference);
        prop_assert_eq!(merged.summary(), reference.summary());
    }

    /// Histogram quantiles track the sorted-vector nearest-rank oracle:
    /// p0/p100 exactly (the extremes are stored), interior quantiles to
    /// within one sub-bucket of relative error.
    #[test]
    fn quantiles_match_sorted_oracle(xs in arb_samples()) {
        let h = record_all(&xs);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);

        prop_assert_eq!(h.quantile(0.0), sorted[0]);
        prop_assert_eq!(h.quantile(1.0), sorted[sorted.len() - 1]);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), sorted[sorted.len() - 1]);

        for &q in &[0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let got = h.quantile(q);
            let want = oracle_quantile(&sorted, q);
            let err = (got - want).abs();
            prop_assert!(
                err <= BUCKET_REL_TOL * want,
                "q={} got={} want={} rel_err={}",
                q, got, want, err / want
            );
        }
    }
}

/// Shard-order shuffle (separate fn: the generic slice shuffle above is
/// monomorphized for f64).
fn shuffle_shards(xs: &mut [LogHistogram], mut seed: u64) {
    for i in (1..xs.len()).rev() {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}
