//! The §II/III stalling phenomenon, end to end: an interactive MD
//! session steered over a dedicated lightpath holds its exchange
//! cadence, while the *same load* over commodity IP stalls on
//! retransmission timeouts — and the stall detector separates the two
//! from the trace alone.

use spice_gridsim::network::{Path, QosProfile};
use spice_obs::{detect, StallConfig, TraceModel};
use spice_steering::{simulate_session_traced, ImdConfig};
use spice_telemetry::Telemetry;

/// Run one traced session over `profile` and return the trace model
/// plus the session's retransmit count.
fn traced_session(profile: QosProfile, key: u64) -> (TraceModel, u64) {
    let t = Telemetry::enabled();
    let path = Path::new(vec![profile.link()]);
    let cfg = ImdConfig::default();
    let stats = simulate_session_traced(&cfg, &path, &path, &t, key);
    (TraceModel::from_snapshot(&t.snapshot()), stats.retransmits)
}

#[test]
fn detector_fires_on_commodity_and_stays_silent_on_lightpath() {
    let cfg = StallConfig::default();

    // Dedicated lightpath: no loss, sub-millisecond jitter — every
    // exchange lands a steady ~250 ms apart and no window opens.
    let (lightpath, lp_retrans) = traced_session(QosProfile::TransAtlanticLightpath, 0);
    let lp = detect(&lightpath, &cfg);
    assert_eq!(lp_retrans, 0, "lightpath profile must be loss-free");
    assert_eq!(lp.tracks.len(), 1);
    assert_eq!(lp.tracks[0].n_events, 500);
    assert!(
        lp.total_windows() == 0,
        "stall detector fired on the lightpath profile: {:?}",
        lp.tracks[0].windows
    );

    // Commodity IP at the identical load: each lost message costs a
    // 200 ms retransmission timeout, roughly doubling that exchange's
    // gap — the detector must open a window per loss burst.
    let (commodity, gp_retrans) = traced_session(QosProfile::TransAtlanticCommodity, 1);
    let gp = detect(&commodity, &cfg);
    assert!(gp_retrans > 0, "commodity profile produced no losses");
    assert_eq!(gp.tracks.len(), 1);
    assert_eq!(gp.tracks[0].n_events, 500);
    assert!(
        gp.total_windows() > 0,
        "stall detector missed {gp_retrans} retransmits on commodity IP"
    );

    // Every flagged window really is cadence-breaking: gap strictly
    // above k × the observed median.
    for w in &gp.tracks[0].windows {
        assert!(w.ratio > cfg.k, "window {w:?} below threshold");
        assert!(w.end > w.start);
    }
    // The worst gap carries at least one full retransmission timeout on
    // top of the nominal ~250 ms exchange (100 ms compute + ~115 ms
    // lossless round-trip + 15 ms render).
    assert!(
        gp.tracks[0].max_gap >= 400,
        "max gap {} ms is too small to contain an RTO",
        gp.tracks[0].max_gap
    );
}

#[test]
fn detection_is_deterministic_across_reruns() {
    let cfg = StallConfig::default();
    let (a, _) = traced_session(QosProfile::TransAtlanticCommodity, 7);
    let (b, _) = traced_session(QosProfile::TransAtlanticCommodity, 7);
    let ra = detect(&a, &cfg);
    let rb = detect(&b, &cfg);
    assert_eq!(ra.to_json().render(), rb.to_json().render());
    assert_eq!(ra.render_text(), rb.render_text());
}
