//! Golden tests for the `spice-trace` binary: the summary and stall
//! reports over a fixed traced campaign are pinned byte-for-byte, and
//! repeated invocations must reproduce them exactly — the CLI's output
//! is part of the deterministic surface (CI diffs it across machines).
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p spice-obs --test golden_cli`

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use spice_gridsim::network::{Path, QosProfile};
use spice_steering::{simulate_session_traced, ImdConfig};
use spice_telemetry::Telemetry;

/// A miniature traced campaign with every trace feature the reports
/// exercise: grid spans with nested checkpoint writes, checkpoint
/// cadence metrics, and two steered sessions — lightpath (key 0) and
/// commodity IP (key 1) — at identical load.
fn build_trace() -> String {
    let t = Telemetry::enabled();

    let site = t.track("grid.site", 3);
    site.enter_at("grid.attempt", 0);
    site.enter_at("equilibrate", 5);
    site.exit_at("equilibrate", 45);
    site.enter_at("realization", 45);
    site.exit_at("realization", 160);
    site.enter_at("checkpoint.write", 160);
    site.instant(
        "checkpoint.bytes",
        vec![("bytes", "65536".into()), ("seq", "1".into())],
    );
    site.exit_at("checkpoint.write", 175);
    site.enter_at("realization", 175);
    site.exit_at("realization", 290);
    site.exit_at("grid.attempt", 300);
    t.counter("grid.checkpoints").add(1);
    t.set_gauge("grid.checkpoint_bytes", 65536.0);

    let cfg = ImdConfig {
        n_exchanges: 120,
        ..ImdConfig::default()
    };
    for (key, profile) in [
        (0, QosProfile::TransAtlanticLightpath),
        (1, QosProfile::TransAtlanticCommodity),
    ] {
        let path = Path::new(vec![profile.link()]);
        simulate_session_traced(&cfg, &path, &path, &t, key);
    }
    t.jsonl()
}

fn trace_file() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let file = dir.join("golden_trace.jsonl");
    fs::write(&file, build_trace()).expect("write trace");
    file
}

fn run_cli(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_spice-trace"))
        .args(args)
        .output()
        .expect("spawn spice-trace");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        out.status.code().unwrap_or(-1),
    )
}

fn check_golden(name: &str, got: &str) {
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden, got).expect("update golden");
        return;
    }
    let want = fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        got, want,
        "spice-trace output drifted from tests/golden/{name}; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn summary_output_is_pinned_and_byte_stable() {
    let file = trace_file();
    let f = file.to_str().expect("utf8 path");
    let (text, code) = run_cli(&["summary", f]);
    assert_eq!(code, 0);
    let (text2, _) = run_cli(&["summary", f]);
    assert_eq!(text, text2, "summary not byte-identical across reruns");
    check_golden("summary.txt", &text);

    let (json, code) = run_cli(&["summary", "--format", "json", f]);
    assert_eq!(code, 0);
    let (json2, _) = run_cli(&["summary", "--format", "json", f]);
    assert_eq!(json, json2, "summary JSON not byte-identical across reruns");
    check_golden("summary.json", &json);
}

#[test]
fn stalls_output_is_pinned_and_byte_stable() {
    let file = trace_file();
    let f = file.to_str().expect("utf8 path");
    let (json, code) = run_cli(&["stalls", "--format", "json", f]);
    assert_eq!(code, 0, "stalls (no --gate) must exit 0");
    let (json2, _) = run_cli(&["stalls", "--format", "json", f]);
    assert_eq!(json, json2, "stalls JSON not byte-identical across reruns");
    check_golden("stalls.json", &json);

    // The commodity session (key 1) stalls; the lightpath session
    // (key 0) must not — the gate therefore trips on this trace.
    assert!(json.contains("\"key\":1"));
    let (_, gated) = run_cli(&["stalls", "--gate", f]);
    assert_eq!(gated, 1, "--gate must exit 1 when stall windows exist");
}
