//! Collapsed-stack flamegraph export.
//!
//! Emits the `stack;frames;joined weight` format consumed by
//! `flamegraph.pl`, inferno, and speedscope. Frames are span names (the
//! track-name group is the base frame), weights are **self** logical
//! ticks — inclusive minus children — so the flamegraph's widths add up
//! exactly to each group's total and agree with the critical-path
//! report, which walks the same aggregated tree.

use crate::critical::{span_groups, PathNode};
use crate::trace::TraceModel;

fn walk(prefix: &str, node: &PathNode, out: &mut Vec<String>) {
    let stack = format!("{prefix};{}", node.name);
    if node.self_ticks > 0 {
        out.push(format!("{stack} {}", node.self_ticks));
    }
    for child in &node.children {
        walk(&stack, child, out);
    }
}

/// Render the whole model as collapsed stacks, one line per stack with
/// nonzero self weight, sorted lexicographically. Deterministic: the
/// aggregated tree is name-sorted at every level and the final listing
/// is re-sorted.
pub fn collapsed(model: &TraceModel) -> String {
    let mut lines = Vec::new();
    for group in span_groups(model) {
        for child in &group.root.children {
            walk(&group.track, child, &mut lines);
        }
    }
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceModel;
    use spice_telemetry::Telemetry;

    #[test]
    fn stacks_weigh_self_ticks() {
        let t = Telemetry::enabled();
        let track = t.track("real", 0);
        {
            let _run = track.span_at("run", 0);
            {
                let _eq = track.span_at("equilibrate", 0);
                track.tick(10);
            }
            track.tick(25);
        }
        let out = collapsed(&TraceModel::from_snapshot(&t.snapshot()));
        assert_eq!(out, "real;run 15\nreal;run;equilibrate 10\n");
    }

    #[test]
    fn weights_sum_to_group_totals() {
        let t = Telemetry::enabled();
        for key in 0..3 {
            let track = t.track("real", key);
            let _run = track.span_at("run", 0);
            {
                let _a = track.span_at("a", 0);
                track.tick(4);
            }
            {
                let _b = track.span_at("b", 4);
                track.tick(11);
            }
            track.tick(12);
        }
        let model = TraceModel::from_snapshot(&t.snapshot());
        let total: u64 = collapsed(&model)
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 36, "3 tracks x 12 inclusive ticks");
    }

    #[test]
    fn empty_model_renders_empty() {
        assert_eq!(collapsed(&TraceModel::default()), "");
    }

    #[test]
    fn output_is_deterministic() {
        let t = Telemetry::enabled();
        t.track("z", 0).span_at("s", 0);
        t.track("a", 0).span_at("s", 0);
        let model = TraceModel::from_snapshot(&t.snapshot());
        assert_eq!(collapsed(&model), collapsed(&model));
    }
}
