//! Mergeable log-bucketed histograms with order-independent merge.
//!
//! The aggregation substrate for every latency/size distribution the
//! analysis layer reports. Design constraints, in priority order:
//!
//! 1. **Order-independent merge.** Per-shard aggregates from the indexed
//!    DES and the clone-amortized ensembles must combine into the same
//!    bytes whatever order the shards arrive in. Bucket counts are
//!    integers (addition commutes *and* associates exactly), and min/max
//!    are lattice operations — so the merged state is a pure function of
//!    the multiset of recorded values. No floating-point accumulator is
//!    stored: the sum is reconstructed from bucket counts at read time,
//!    in bucket-index order, so even it is permutation-invariant.
//! 2. **Exact-within-bucket quantiles.** Buckets are geometric with 8
//!    sub-buckets per power of two (relative width `2^(1/8) ≈ 1.09`), so
//!    any reported quantile lies within ~9% of the exact order statistic
//!    — and `quantile(1.0)` returns the exact maximum because estimates
//!    are clamped to the recorded `[min, max]`.
//! 3. **No transcendentals on the record path.** The bucket index is
//!    computed from the IEEE-754 exponent plus eight precomputed mantissa
//!    thresholds — integer compares only, bit-identical on every
//!    platform.

use std::collections::BTreeMap;

/// Sub-buckets per power of two. Relative bucket width is
/// `2^(1/SUB_BUCKETS) - 1 ≈ 9%`.
const SUB_BUCKETS: i64 = 8;

/// Mantissa thresholds `2^(k/8)` for `k = 1..=7`, used to pick the
/// sub-bucket of a normalized mantissa in `[1, 2)`.
const SUB_THRESHOLDS: [f64; 7] = [
    1.0905077326652577,       // 2^(1/8)
    1.189207115002721,        // 2^(2/8)
    1.2968395546510096,       // 2^(3/8)
    std::f64::consts::SQRT_2, // 2^(4/8)
    1.5422108254079407,       // 2^(5/8)
    1.681792830507429,        // 2^(6/8)
    1.8340080864093424,       // 2^(7/8)
];

/// Geometric midpoints `2^((k+0.5)/8)` for `k = 0..=7`: the
/// representative value reported for a sub-bucket.
const SUB_MIDPOINTS: [f64; 8] = [
    1.0442737824274138, // 2^(0.5/8)
    1.1387886347566916, // 2^(1.5/8)
    1.241857812073484,  // 2^(2.5/8)
    1.3542555469368927, // 2^(3.5/8)
    1.4768261459394993, // 2^(4.5/8)
    1.6104903319492543, // 2^(5.5/8)
    1.756551184299977,  // 2^(6.5/8)
    1.915832283924811,  // 2^(7.5/8)
];

/// Quantile summary reported by [`LogHistogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileSummary {
    /// Observations recorded.
    pub count: u64,
    /// Median (bucket-resolution).
    pub p50: f64,
    /// 95th percentile (bucket-resolution).
    pub p95: f64,
    /// 99th percentile (bucket-resolution).
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

/// A mergeable log-bucketed histogram over non-negative values.
///
/// Values `v <= 0` (and subnormals, below any realistic duration) land
/// in a dedicated zero bucket; NaN is ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Count per geometric bucket, keyed by `exponent * 8 + sub`.
    counts: BTreeMap<i64, u64>,
    /// Count of values `<= 0` or subnormal.
    zero: u64,
    /// Total observations.
    count: u64,
    /// Exact minimum (`+inf` when empty).
    min: f64,
    /// Exact maximum (`-inf` when empty).
    max: f64,
}

/// Bucket index of a positive normal `f64`: IEEE exponent times 8 plus
/// the sub-bucket its mantissa falls into.
fn bucket_index(v: f64) -> i64 {
    let bits = v.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
    // Normalized mantissa in [1, 2).
    let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let mut sub = 0i64;
    for t in SUB_THRESHOLDS {
        if mantissa >= t {
            sub += 1;
        }
    }
    exponent * SUB_BUCKETS + sub
}

/// Representative value (geometric midpoint) of bucket `idx`.
fn bucket_midpoint(idx: i64) -> f64 {
    let exponent = idx.div_euclid(SUB_BUCKETS);
    let sub = idx.rem_euclid(SUB_BUCKETS) as usize;
    // 2^exponent as an exact bit pattern (exponent is in normal range
    // because the index came from a normal f64).
    let pow2 = f64::from_bits(((exponent + 1023) as u64) << 52);
    pow2 * SUB_MIDPOINTS[sub]
}

// NOT derived: the derive would zero the min/max sentinels, silently
// pinning `min` at 0.0 for every histogram built through `or_default()`.
impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: BTreeMap::new(),
            zero: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN is ignored; `v <= 0` and subnormals
    /// count in the zero bucket.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v >= f64::MIN_POSITIVE && v.is_finite() {
            *self.counts.entry(bucket_index(v)).or_insert(0) += 1;
        } else if v > 0.0 && !v.is_finite() {
            // +inf: park in the top bucket so ranks stay consistent.
            *self.counts.entry(i64::MAX).or_insert(0) += 1;
        } else {
            self.zero += 1;
        }
    }

    /// Merge another histogram in. Exact integer/lattice operations
    /// only, so any permutation and association of merges yields the
    /// identical struct.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (&idx, &n) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Exact maximum (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Approximate sum, reconstructed from bucket midpoints in bucket
    /// order (order-independent; within ~9% of the exact sum).
    pub fn approx_sum(&self) -> f64 {
        let mut sum = 0.0;
        for (&idx, &n) in &self.counts {
            if idx != i64::MAX {
                sum += bucket_midpoint(idx) * n as f64;
            }
        }
        sum
    }

    /// Approximate mean (NaN when empty).
    pub fn approx_mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.approx_sum() / self.count as f64
        }
    }

    /// The `q`-quantile under the nearest-rank definition (`q` clamped
    /// to `[0, 1]`): the representative of the bucket holding the
    /// `ceil(q·n)`-th smallest value, clamped to the exact `[min, max]`.
    /// The result is within one bucket width (~9% relative) of the exact
    /// order statistic; `quantile(0.0)` and `quantile(1.0)` are exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = self.zero;
        if rank <= seen {
            // The rank falls among the non-positive values; min is exact
            // for rank 1 and bounds the rest from below.
            return self.min.min(0.0).max(self.min);
        }
        for (&idx, &n) in &self.counts {
            seen += n;
            if rank <= seen {
                let mid = if idx == i64::MAX {
                    f64::INFINITY
                } else {
                    bucket_midpoint(idx)
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50/p95/p99/max plus the count.
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary {
            count: self.count,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_empty_histogram() {
        // Regression: a derived Default once zeroed the min/max
        // sentinels, pinning min at 0.0 for every `or_default()` fold.
        let mut h = LogHistogram::default();
        assert_eq!(h, LogHistogram::new());
        h.record(115.0);
        h.record(115.0);
        assert_eq!(h.min(), 115.0);
        assert_eq!(h.quantile(0.5), 115.0);
    }

    #[test]
    fn empty_histogram_reports_nan() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_nan());
        assert!(h.min().is_nan() && h.max().is_nan());
    }

    #[test]
    fn single_value_is_exact_at_extremes() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        assert_eq!(h.quantile(0.0), 42.0);
        assert_eq!(h.quantile(1.0), 42.0);
        assert_eq!(h.summary().max, 42.0);
    }

    #[test]
    fn quantiles_track_order_statistics_within_bucket_width() {
        let mut h = LogHistogram::new();
        let mut values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.37).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q);
            assert!(
                (est / exact - 1.0).abs() < 0.10,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_bulk_record() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..500 {
            let v = (i as f64) * 1.7 + 0.3;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = LogHistogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, all, "merge order must not matter");
    }

    #[test]
    fn zero_and_negative_values_hit_the_zero_bucket() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        // Rank 1 falls in the zero bucket; the reported value is bounded
        // by the exact min.
        assert!(h.quantile(0.01) <= 0.0);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(1.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bucket_index_is_monotone_and_matches_midpoints() {
        let mut last = i64::MIN;
        for i in 1..4000 {
            let v = i as f64 * 0.01;
            let idx = bucket_index(v);
            assert!(idx >= last, "index monotone in v");
            last = last.max(idx);
            let mid = bucket_midpoint(idx);
            assert!(
                (mid / v - 1.0).abs() < 0.095,
                "midpoint {mid} within a bucket of {v}"
            );
        }
    }

    #[test]
    fn approx_sum_is_close_and_order_independent() {
        let values: Vec<f64> = (1..=200).map(|i| i as f64 * 2.3).collect();
        let exact: f64 = values.iter().sum();
        let mut fwd = LogHistogram::new();
        let mut rev = LogHistogram::new();
        for &v in &values {
            fwd.record(v);
        }
        for &v in values.iter().rev() {
            rev.record(v);
        }
        assert_eq!(fwd.approx_sum().to_bits(), rev.approx_sum().to_bits());
        assert!((fwd.approx_sum() / exact - 1.0).abs() < 0.05);
    }

    #[test]
    fn infinity_lands_in_the_top_bucket() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }
}
