//! Noise-aware trace diff for A/B regression detection.
//!
//! Compares two exports — either whole-JSON benchmark reports
//! (`BENCH_*.json`) or telemetry JSONL streams — by flattening each into
//! dotted-path leaves and comparing leaf-by-leaf under a relative
//! tolerance. Telemetry events are aggregated (per-track event counts
//! and final clocks) rather than compared line-by-line, so a diff
//! answers "did the shape of the run change" instead of drowning in
//! per-event noise. Paths can be excluded by substring for fields that
//! are expected to move (wall-clock timings on shared CI runners).

use crate::json::{self, Json};
use crate::trace::TraceModel;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One flattened leaf value.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// Numeric leaf (compared under tolerance).
    Num(f64),
    /// String leaf (compared exactly).
    Str(String),
    /// Boolean leaf (compared exactly).
    Bool(bool),
    /// Null leaf.
    Null,
}

impl Leaf {
    fn render(&self) -> String {
        match self {
            Leaf::Num(v) => json::fmt_f64(*v),
            Leaf::Str(s) => s.clone(),
            Leaf::Bool(b) => b.to_string(),
            Leaf::Null => "null".to_string(),
        }
    }
}

/// Diff configuration.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative tolerance for numeric leaves (0.1 = 10%).
    pub tolerance: f64,
    /// Absolute epsilon under which numeric deltas never count.
    pub abs_epsilon: f64,
    /// Substrings; any matching path is skipped.
    pub ignore: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            tolerance: 0.1,
            abs_epsilon: 1e-9,
            ignore: Vec::new(),
        }
    }
}

/// One out-of-tolerance leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted leaf path.
    pub path: String,
    /// Value in trace A, rendered.
    pub a: String,
    /// Value in trace B, rendered.
    pub b: String,
    /// Relative delta for numeric leaves, None for type/string breaks.
    pub rel: Option<f64>,
}

/// Diff result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Leaves compared (present in both, not ignored).
    pub compared: usize,
    /// Out-of-tolerance leaves, in path order.
    pub broken: Vec<DiffEntry>,
    /// Paths only in B.
    pub added: Vec<String>,
    /// Paths only in A.
    pub removed: Vec<String>,
}

impl DiffReport {
    /// True when the traces match under the configured tolerance.
    pub fn is_clean(&self) -> bool {
        self.broken.is_empty() && self.added.is_empty() && self.removed.is_empty()
    }
}

fn flatten_json(prefix: &str, v: &Json, out: &mut BTreeMap<String, Leaf>) {
    match v {
        Json::Null => {
            out.insert(prefix.to_string(), Leaf::Null);
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), Leaf::Bool(*b));
        }
        Json::Num(n) => {
            out.insert(prefix.to_string(), Leaf::Num(*n));
        }
        Json::Str(s) => {
            out.insert(prefix.to_string(), Leaf::Str(s.clone()));
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_json(&format!("{prefix}[{i}]"), item, out);
            }
            if items.is_empty() {
                out.insert(format!("{prefix}.len"), Leaf::Num(0.0));
            }
        }
        Json::Obj(members) => {
            for (k, val) in members {
                let child = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_json(&child, val, out);
            }
        }
    }
}

/// Flatten a telemetry trace model: metrics become `metrics.<name>...`
/// leaves; events are aggregated into per-track counts and final clocks
/// under `events.<track>/<key>...`.
fn flatten_model(model: &TraceModel, out: &mut BTreeMap<String, Leaf>) {
    use crate::trace::{EvKind, MetricVal};
    for (name, v) in &model.metrics {
        match v {
            MetricVal::Counter(c) => {
                out.insert(format!("metrics.{name}"), Leaf::Num(*c as f64));
            }
            MetricVal::Gauge(g) => {
                out.insert(format!("metrics.{name}"), Leaf::Num(*g));
            }
            MetricVal::Histogram { counts, sum, .. } => {
                let n: u64 = counts.iter().sum();
                out.insert(format!("metrics.{name}.n"), Leaf::Num(n as f64));
                out.insert(format!("metrics.{name}.sum"), Leaf::Num(*sum));
            }
        }
    }
    for track in &model.tracks {
        let base = format!("events.{}/{}", track.track, track.key);
        let mut counts: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        for e in &track.events {
            let kind = match e.kind {
                EvKind::Enter => "enter",
                EvKind::Exit => "exit",
                EvKind::Instant => "instant",
            };
            *counts.entry((e.name.as_str(), kind)).or_default() += 1;
        }
        for ((name, kind), n) in counts {
            out.insert(format!("{base}.{name}.{kind}"), Leaf::Num(n as f64));
        }
        out.insert(
            format!("{base}.final_clock"),
            Leaf::Num(track.events.last().map_or(0, |e| e.logical) as f64),
        );
    }
}

/// Parse one input into leaves. Telemetry JSONL is detected by shape —
/// the first non-blank line is an object with a string `"type"` member —
/// so even a one-line export (which also parses as a whole JSON
/// document) is aggregated as telemetry rather than flattened
/// structurally. Everything else is tried as a single JSON document,
/// falling back to JSONL.
pub fn flatten_input(text: &str) -> Result<BTreeMap<String, Leaf>, String> {
    let mut out = BTreeMap::new();
    let looks_like_jsonl = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .and_then(|l| json::parse(l).ok())
        .is_some_and(|obj| obj.get("type").is_some_and(|t| t.as_str().is_some()));
    if looks_like_jsonl {
        let model = TraceModel::from_jsonl(text)?;
        flatten_model(&model, &mut out);
    } else {
        match json::parse(text) {
            Ok(doc) => flatten_json("", &doc, &mut out),
            Err(_) => {
                let model = TraceModel::from_jsonl(text)
                    .map_err(|e| format!("input is neither a JSON document nor JSONL: {e}"))?;
                flatten_model(&model, &mut out);
            }
        }
    }
    Ok(out)
}

/// Compare two flattened inputs.
pub fn diff(
    a: &BTreeMap<String, Leaf>,
    b: &BTreeMap<String, Leaf>,
    cfg: &DiffConfig,
) -> DiffReport {
    let ignored = |path: &str| cfg.ignore.iter().any(|s| path.contains(s.as_str()));
    let mut report = DiffReport::default();
    for (path, va) in a {
        if ignored(path) {
            continue;
        }
        match b.get(path) {
            None => report.removed.push(path.clone()),
            Some(vb) => {
                report.compared += 1;
                match (va, vb) {
                    (Leaf::Num(x), Leaf::Num(y)) => {
                        let delta = (x - y).abs();
                        let scale = x.abs().max(y.abs());
                        let within = delta <= cfg.abs_epsilon || delta <= cfg.tolerance * scale;
                        // NaN deltas (either side non-finite) always break.
                        if !within || !delta.is_finite() {
                            report.broken.push(DiffEntry {
                                path: path.clone(),
                                a: va.render(),
                                b: vb.render(),
                                rel: if scale > 0.0 && delta.is_finite() {
                                    Some(delta / scale)
                                } else {
                                    None
                                },
                            });
                        }
                    }
                    _ if va == vb => {}
                    _ => report.broken.push(DiffEntry {
                        path: path.clone(),
                        a: va.render(),
                        b: vb.render(),
                        rel: None,
                    }),
                }
            }
        }
    }
    for path in b.keys() {
        if !ignored(path) && !a.contains_key(path) {
            report.added.push(path.clone());
        }
    }
    report
}

impl DiffReport {
    /// Human-readable rendering.
    pub fn render_text(&self, cfg: &DiffConfig) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace diff  tolerance={}  compared={}",
            json::fmt_f64(cfg.tolerance),
            self.compared
        );
        for e in &self.broken {
            match e.rel {
                Some(rel) => {
                    let _ = writeln!(
                        out,
                        "  BREAK {}  a={}  b={}  rel={:.4}",
                        e.path, e.a, e.b, rel
                    );
                }
                None => {
                    let _ = writeln!(out, "  BREAK {}  a={}  b={}", e.path, e.a, e.b);
                }
            }
        }
        for p in &self.removed {
            let _ = writeln!(out, "  ONLY-A {p}");
        }
        for p in &self.added {
            let _ = writeln!(out, "  ONLY-B {p}");
        }
        let _ = writeln!(
            out,
            "result: {}",
            if self.is_clean() { "clean" } else { "DIFFERS" }
        );
        out
    }

    /// JSON rendering.
    pub fn to_json(&self, cfg: &DiffConfig) -> Json {
        Json::Obj(vec![
            ("tolerance".to_string(), Json::Num(cfg.tolerance)),
            ("compared".to_string(), Json::Num(self.compared as f64)),
            ("clean".to_string(), Json::Bool(self.is_clean())),
            (
                "broken".to_string(),
                Json::Arr(
                    self.broken
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("path".to_string(), Json::Str(e.path.clone())),
                                ("a".to_string(), Json::Str(e.a.clone())),
                                ("b".to_string(), Json::Str(e.b.clone())),
                                (
                                    "rel".to_string(),
                                    e.rel.map_or(Json::Null, |r| {
                                        Json::Num((r * 10000.0).round() / 10000.0)
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "removed".to_string(),
                Json::Arr(self.removed.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "added".to_string(),
                Json::Arr(self.added.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(src: &str) -> BTreeMap<String, Leaf> {
        flatten_input(src).expect("parses")
    }

    #[test]
    fn identical_docs_are_clean() {
        let a = leaves(r#"{"x": 1.0, "y": {"z": [1, 2]}, "s": "hi"}"#);
        let r = diff(&a, &a, &DiffConfig::default());
        assert!(r.is_clean());
        assert_eq!(r.compared, 4);
    }

    #[test]
    fn tolerance_absorbs_noise_but_not_regressions() {
        let a = leaves(r#"{"wall_ms": 100.0}"#);
        let noisy = leaves(r#"{"wall_ms": 105.0}"#);
        let regressed = leaves(r#"{"wall_ms": 150.0}"#);
        let cfg = DiffConfig::default(); // 10%
        assert!(diff(&a, &noisy, &cfg).is_clean());
        let r = diff(&a, &regressed, &cfg);
        assert_eq!(r.broken.len(), 1);
        assert_eq!(r.broken[0].path, "wall_ms");
        assert!((r.broken[0].rel.unwrap() - 50.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn added_removed_and_ignored_paths() {
        let a = leaves(r#"{"keep": 1, "gone": 2, "noise.wall": 5}"#);
        let b = leaves(r#"{"keep": 1, "new": 3, "noise.wall": 50}"#);
        let cfg = DiffConfig {
            ignore: vec!["noise".to_string()],
            ..DiffConfig::default()
        };
        let r = diff(&a, &b, &cfg);
        assert_eq!(r.removed, vec!["gone".to_string()]);
        assert_eq!(r.added, vec!["new".to_string()]);
        assert!(r.broken.is_empty(), "ignored path does not break");
        assert!(!r.is_clean(), "adds/removes still dirty the result");
    }

    #[test]
    fn string_and_type_breaks_are_exact() {
        let a = leaves(r#"{"mode": "fast", "n": 1}"#);
        let b = leaves(r#"{"mode": "slow", "n": "1"}"#);
        let r = diff(&a, &b, &DiffConfig::default());
        assert_eq!(r.broken.len(), 2);
        assert!(r.broken.iter().all(|e| e.rel.is_none()));
    }

    #[test]
    fn jsonl_inputs_flatten_to_aggregates() {
        use spice_telemetry::Telemetry;
        let t = Telemetry::enabled();
        let track = t.track("real", 0);
        {
            let _g = track.span_at("run", 0);
            track.instant_at("mark", 5, Vec::new());
            track.tick(9);
        }
        t.counter("grid.jobs").add(3);
        let flat = leaves(&t.jsonl());
        assert_eq!(flat.get("metrics.grid.jobs"), Some(&Leaf::Num(3.0)));
        assert_eq!(flat.get("events.real/0.run.enter"), Some(&Leaf::Num(1.0)));
        assert_eq!(flat.get("events.real/0.final_clock"), Some(&Leaf::Num(9.0)));
        // Same trace replayed → clean diff.
        let r = diff(&flat, &leaves(&t.jsonl()), &DiffConfig::default());
        assert!(r.is_clean(), "{r:?}");
    }

    #[test]
    fn one_line_jsonl_still_flattens_as_telemetry() {
        // A single-line export also parses as a plain JSON document; the
        // shape check must route it through telemetry aggregation so it
        // diffs clean against a multi-line export of the same trace.
        let one = leaves("{\"type\":\"counter\",\"name\":\"grid.jobs\",\"value\":3}\n");
        assert_eq!(one.get("metrics.grid.jobs"), Some(&Leaf::Num(3.0)));
        assert!(!one.contains_key("type"), "not flattened structurally");
        let two = leaves(
            "{\"type\":\"counter\",\"name\":\"grid.jobs\",\"value\":3}\n\
             {\"type\":\"counter\",\"name\":\"grid.retries\",\"value\":0}\n",
        );
        let r = diff(&one, &two, &DiffConfig::default());
        assert!(r.broken.is_empty());
        assert_eq!(r.added, vec!["metrics.grid.retries".to_string()]);
    }

    #[test]
    fn garbage_input_is_an_error() {
        assert!(flatten_input("definitely not json").is_err());
    }
}
