//! Campaign summary report: quantiles, critical paths, highlights.
//!
//! `spice-trace summary` renders this over one or more traces. Span
//! durations are aggregated per `(track group, span name)` into
//! [`LogHistogram`]s — so a summary over N shard exports is the merge of
//! N per-shard summaries, in any order — and campaign-level metrics the
//! other subsystems export (grid failure/retry counters, checkpoint
//! write cadence and bytes from the durable engine, steering delivery
//! counters) are surfaced as named highlight sections instead of one
//! undifferentiated metric dump.

use crate::critical::{self, CriticalStep, TrackGroup};
use crate::histo::{LogHistogram, QuantileSummary};
use crate::json::{self, Json};
use crate::trace::{EvKind, MetricVal, TraceModel};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Duration quantiles of one span name within one track group.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanQuantiles {
    /// Track-name group.
    pub track: String,
    /// Span name.
    pub name: String,
    /// p50/p95/p99/max over closed-span logical durations.
    pub summary: QuantileSummary,
}

/// The full summary report.
#[derive(Debug, Clone, Default)]
pub struct SummaryReport {
    /// Input labels (file names or "snapshot"), in merge order.
    pub inputs: Vec<String>,
    /// Tracks seen.
    pub n_tracks: usize,
    /// Events seen.
    pub n_events: usize,
    /// Aggregated span-tree groups (critical-path source).
    pub groups: Vec<TrackGroup>,
    /// Critical path per group, in group order.
    pub critical_paths: Vec<(String, Vec<CriticalStep>)>,
    /// Span-duration quantiles, ordered by (track, name).
    pub span_quantiles: Vec<SpanQuantiles>,
    /// Highlight sections: (section title, [(metric name, rendered
    /// value)]) for grid/checkpoint/steering metrics that are present.
    pub highlights: Vec<(String, Vec<(String, String)>)>,
}

/// Collect per-(group, span-name) duration histograms from one model
/// into `acc` — the merge target shared across inputs.
fn fold_span_durations(model: &TraceModel, acc: &mut BTreeMap<(String, String), LogHistogram>) {
    for track in &model.tracks {
        let final_clock = track.events.last().map_or(0, |e| e.logical);
        let mut stack: Vec<(&str, u64)> = Vec::new();
        for e in &track.events {
            match e.kind {
                EvKind::Enter => stack.push((&e.name, e.logical)),
                EvKind::Exit => {
                    if let Some((name, entered)) = stack.pop() {
                        acc.entry((track.track.clone(), name.to_string()))
                            .or_default()
                            .record(e.logical.saturating_sub(entered) as f64);
                    }
                }
                EvKind::Instant => {}
            }
        }
        while let Some((name, entered)) = stack.pop() {
            acc.entry((track.track.clone(), name.to_string()))
                .or_default()
                .record(final_clock.saturating_sub(entered) as f64);
        }
    }
}

fn render_metric(v: &MetricVal) -> String {
    match v {
        MetricVal::Counter(c) => c.to_string(),
        MetricVal::Gauge(g) => json::fmt_f64(*g),
        MetricVal::Histogram { counts, sum, .. } => {
            let n: u64 = counts.iter().sum();
            format!("n={n} sum={}", json::fmt_f64(*sum))
        }
    }
}

/// Pull every metric whose name starts with `prefix` out of the merged
/// metric map, rendered.
fn section(metrics: &BTreeMap<String, MetricVal>, prefix: &str) -> Vec<(String, String)> {
    metrics
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(name, v)| (name.clone(), render_metric(v)))
        .collect()
}

/// Build the report over one or more (label, model) inputs. Models are
/// concatenated track-wise; metrics merge by name (counters and
/// histogram counts add, gauges take the last input's value) so shard
/// exports combine the way the live registry would have.
pub fn build(inputs: &[(String, TraceModel)]) -> SummaryReport {
    let mut merged = TraceModel::default();
    let mut metrics: BTreeMap<String, MetricVal> = BTreeMap::new();
    let mut durations: BTreeMap<(String, String), LogHistogram> = BTreeMap::new();
    let mut report = SummaryReport::default();
    for (label, model) in inputs {
        report.inputs.push(label.clone());
        fold_span_durations(model, &mut durations);
        merged.tracks.extend(model.tracks.iter().cloned());
        for (name, v) in &model.metrics {
            match (metrics.get_mut(name), v) {
                (Some(MetricVal::Counter(a)), MetricVal::Counter(b)) => *a += b,
                (Some(MetricVal::Gauge(a)), MetricVal::Gauge(b)) => *a = *b,
                (
                    Some(MetricVal::Histogram {
                        bounds: ba,
                        counts: a,
                        sum: s,
                    }),
                    MetricVal::Histogram {
                        bounds: bb,
                        counts: b,
                        sum: t,
                    },
                ) => {
                    if ba == bb && a.len() == b.len() {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        *s += t;
                    } else {
                        // Shards disagree on bucket layout: a zip would
                        // silently drop the longer side's buckets and
                        // corrupt n. Collapse to a bucketless histogram
                        // whose n and sum — the only aggregates the
                        // report surfaces — stay exact; collapsing is
                        // idempotent, so merge order still cannot matter.
                        let n: u64 = a.iter().sum::<u64>() + b.iter().copied().sum::<u64>();
                        *ba = Vec::new();
                        *a = vec![n];
                        *s += t;
                    }
                }
                _ => {
                    metrics.insert(name.clone(), v.clone());
                }
            }
        }
    }
    report.n_tracks = merged.tracks.len();
    report.n_events = merged.event_count();
    report.groups = critical::span_groups(&merged);
    report.critical_paths = report
        .groups
        .iter()
        .map(|g| (g.track.clone(), critical::critical_path(g)))
        .collect();
    report.span_quantiles = durations
        .into_iter()
        .map(|((track, name), h)| SpanQuantiles {
            track,
            name,
            summary: h.summary(),
        })
        .collect();
    for (title, prefix) in [
        ("grid", "grid."),
        ("checkpoint", "checkpoint."),
        ("steering", "steering."),
    ] {
        let entries = section(&metrics, prefix);
        if !entries.is_empty() {
            report.highlights.push((title.to_string(), entries));
        }
    }
    report
}

fn fmt_q(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.1}")
    }
}

impl SummaryReport {
    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace summary  inputs={}  tracks={}  events={}",
            self.inputs.len(),
            self.n_tracks,
            self.n_events
        );
        if !self.critical_paths.is_empty() {
            out.push_str("critical paths (logical ticks)\n");
            for (track, steps) in &self.critical_paths {
                let _ = write!(out, "  {track}:");
                for s in steps {
                    let _ = write!(
                        out,
                        " -> {} [{} x{} {:.0}%]",
                        s.name,
                        s.total_ticks,
                        s.count,
                        s.share * 100.0
                    );
                }
                out.push('\n');
            }
        }
        if !self.span_quantiles.is_empty() {
            out.push_str("span durations (ticks)\n");
            for q in &self.span_quantiles {
                let _ = writeln!(
                    out,
                    "  {:<40} n={:<7} p50={:<9} p95={:<9} p99={:<9} max={}",
                    format!("{}:{}", q.track, q.name),
                    q.summary.count,
                    fmt_q(q.summary.p50),
                    fmt_q(q.summary.p95),
                    fmt_q(q.summary.p99),
                    fmt_q(q.summary.max),
                );
            }
        }
        for (title, entries) in &self.highlights {
            let _ = writeln!(out, "{title} metrics");
            for (name, v) in entries {
                let _ = writeln!(out, "  {name:<42} = {v}");
            }
        }
        out
    }

    /// JSON rendering.
    pub fn to_json(&self) -> Json {
        let q_obj = |s: &QuantileSummary| {
            Json::Obj(vec![
                ("count".to_string(), Json::Num(s.count as f64)),
                ("p50".to_string(), Json::Num(s.p50)),
                ("p95".to_string(), Json::Num(s.p95)),
                ("p99".to_string(), Json::Num(s.p99)),
                ("max".to_string(), Json::Num(s.max)),
            ])
        };
        Json::Obj(vec![
            (
                "inputs".to_string(),
                Json::Arr(self.inputs.iter().cloned().map(Json::Str).collect()),
            ),
            ("tracks".to_string(), Json::Num(self.n_tracks as f64)),
            ("events".to_string(), Json::Num(self.n_events as f64)),
            (
                "critical_paths".to_string(),
                Json::Obj(
                    self.critical_paths
                        .iter()
                        .map(|(track, steps)| {
                            (
                                track.clone(),
                                Json::Arr(
                                    steps
                                        .iter()
                                        .map(|s| {
                                            Json::Obj(vec![
                                                ("name".to_string(), Json::Str(s.name.clone())),
                                                ("count".to_string(), Json::Num(s.count as f64)),
                                                (
                                                    "total_ticks".to_string(),
                                                    Json::Num(s.total_ticks as f64),
                                                ),
                                                (
                                                    "self_ticks".to_string(),
                                                    Json::Num(s.self_ticks as f64),
                                                ),
                                                (
                                                    "share".to_string(),
                                                    Json::Num(
                                                        (s.share * 10000.0).round() / 10000.0,
                                                    ),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "span_durations".to_string(),
                Json::Arr(
                    self.span_quantiles
                        .iter()
                        .map(|q| {
                            Json::Obj(vec![
                                ("track".to_string(), Json::Str(q.track.clone())),
                                ("name".to_string(), Json::Str(q.name.clone())),
                                ("quantiles".to_string(), q_obj(&q.summary)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "highlights".to_string(),
                Json::Obj(
                    self.highlights
                        .iter()
                        .map(|(title, entries)| {
                            (
                                title.clone(),
                                Json::Obj(
                                    entries
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_telemetry::Telemetry;

    fn demo_model() -> TraceModel {
        let t = Telemetry::enabled();
        for key in 0..4 {
            let track = t.track("real", key);
            let _run = track.span_at("run", 0);
            {
                let _eq = track.span_at("equilibrate", 0);
                track.tick(10 + key);
            }
            track.tick(50);
        }
        t.counter("grid.failures").add(3);
        t.counter("checkpoint.writes").add(7);
        t.counter("checkpoint.bytes").add(9000);
        t.set_gauge("steering.backlog_watermark", 5.0);
        t.counter("md.pairs").add(1); // not a highlight prefix
        TraceModel::from_snapshot(&t.snapshot())
    }

    #[test]
    fn report_aggregates_quantiles_and_highlights() {
        let r = build(&[("snapshot".to_string(), demo_model())]);
        assert_eq!(r.n_tracks, 4);
        let eq = r
            .span_quantiles
            .iter()
            .find(|q| q.name == "equilibrate")
            .unwrap();
        assert_eq!(eq.summary.count, 4);
        assert_eq!(eq.summary.max, 13.0, "max duration 10+3");
        let titles: Vec<&str> = r.highlights.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(titles, ["grid", "checkpoint", "steering"]);
        let ckpt = &r.highlights[1].1;
        assert!(ckpt.contains(&("checkpoint.bytes".to_string(), "9000".to_string())));
        assert_eq!(r.critical_paths.len(), 1);
        assert_eq!(r.critical_paths[0].1[0].name, "run");
    }

    #[test]
    fn shard_merge_is_order_independent() {
        let a = ("a".to_string(), demo_model());
        let b = {
            let t = Telemetry::enabled();
            let track = t.track("real", 9);
            let _run = track.span_at("run", 0);
            track.tick(400);
            t.counter("grid.failures").add(2);
            ("b".to_string(), TraceModel::from_snapshot(&t.snapshot()))
        };
        let ab = build(&[a.clone(), b.clone()]);
        let ba = build(&[b, a]);
        assert_eq!(ab.span_quantiles, ba.span_quantiles);
        assert_eq!(ab.highlights, ba.highlights, "counters add commutatively");
        let failures = &ab.highlights[0].1;
        assert!(failures.contains(&("grid.failures".to_string(), "5".to_string())));
    }

    #[test]
    fn histogram_merge_checks_bucket_layout() {
        use crate::trace::MetricVal;
        let shard = |bounds: &[f64], counts: &[u64], sum: f64| {
            let mut m = TraceModel::default();
            m.metrics.push((
                "grid.latency".to_string(),
                MetricVal::Histogram {
                    bounds: bounds.to_vec(),
                    counts: counts.to_vec(),
                    sum,
                },
            ));
            ("s".to_string(), m)
        };
        // Same layout merges bucket-wise.
        let same = build(&[shard(&[1.0], &[2, 3], 5.0), shard(&[1.0], &[1, 1], 2.0)]);
        assert_eq!(same.highlights[0].1[0].1, "n=7 sum=7");
        // Mismatched layouts collapse instead of zip-truncating: n counts
        // every observation from both shards.
        let a = shard(&[1.0], &[2, 3], 5.0);
        let b = shard(&[1.0, 10.0], &[1, 1, 4], 9.0);
        let ab = build(&[a.clone(), b.clone()]);
        assert_eq!(ab.highlights[0].1[0].1, "n=11 sum=14");
        assert_eq!(build(&[b, a]).highlights, ab.highlights);
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = build(&[("snapshot".to_string(), demo_model())]);
        assert_eq!(r.render_text(), r.render_text());
        assert_eq!(r.to_json().render(), r.to_json().render());
        assert!(r.render_text().contains("critical paths"));
    }

    #[test]
    fn empty_input_renders_without_sections() {
        let r = build(&[("x".to_string(), TraceModel::default())]);
        assert_eq!(r.n_tracks, 0);
        assert!(r.highlights.is_empty());
        assert!(r.render_text().starts_with("trace summary"));
    }
}
