//! Minimal deterministic JSON: a hand-rolled parser and writer.
//!
//! The workspace is dependency-free (the vendored `serde_json` stand-in
//! has no dynamic `Value` type), and the analysis layer must read two
//! very different inputs — telemetry JSONL exports and flat benchmark
//! reports — so `spice-obs` carries its own small JSON value model. The
//! writer preserves insertion order and formats floats with the shortest
//! round-trip representation, so equal inputs render byte-equal output.

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order (callers that need
/// a canonical order sort keys themselves).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source/insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64 (numbers with no fractional part only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // spice-lint: allow(N002) fract()==0.0 is the exact is-integer test, not a rounded comparison
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Render compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_f64(*n)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Deterministic float formatting: shortest round-trip, integers without
/// a trailing `.0`, non-finite values as `null` (JSON has no inf/NaN).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    format!("{v}")
}

/// Escape a string for a JSON literal body. Mirrors the telemetry
/// exporter's `json_escape`: beyond the mandatory set (quote, backslash,
/// C0 controls), DEL and the U+2028/U+2029 line separators are
/// `\u`-escaped so report output stays line-oriented even when track or
/// attribute names carry hostile characters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".to_string());
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| "invalid surrogate pair".to_string())?
                                } else {
                                    return Err("lone high surrogate".to_string());
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        other => {
                            return Err(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("invalid number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x"}"#)
            .expect("valid json");
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0)
            ]))
        );
        assert_eq!(j.get("b").and_then(|b| b.get("c")), Some(&Json::Null));
        assert_eq!(j.get("e").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let src = r#""a\"b\\c\ndé  ✓""#;
        let j = parse(src).expect("valid string");
        assert_eq!(j.as_str(), Some("a\"b\\c\ndé\u{2028} ✓"));
        // Render → parse is the identity.
        let again = parse(&j.render()).expect("round trip");
        assert_eq!(again, j);
    }

    #[test]
    fn line_separators_and_del_are_escaped() {
        // Raw U+2028/U+2029 are legal inside JSON strings but break
        // line-oriented consumers; the writer must \u-escape them (and
        // DEL), matching the telemetry exporter.
        let j = Json::Str("a\u{2028}b\u{2029}c\u{7f}".to_string());
        assert_eq!(j.render(), "\"a\\u2028b\\u2029c\\u007f\"");
        assert_eq!(parse(&j.render()).expect("round trip"), j);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let j = parse(r#""😀""#).expect("emoji");
        assert_eq!(j.as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn render_is_deterministic_and_compact() {
        let j = parse(r#"{ "b" : 1 , "a" : [ true , null ] }"#).expect("valid");
        assert_eq!(j.render(), r#"{"b":1,"a":[true,null]}"#);
        assert_eq!(j.render(), j.render());
    }

    #[test]
    fn u64_extraction() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
