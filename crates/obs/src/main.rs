//! `spice-trace`: the command-line front end of `spice-obs`.
//!
//! ```text
//! spice-trace summary       <trace.jsonl>... [--format text|json]
//! spice-trace critical-path <trace.jsonl>... [--format text|json]
//! spice-trace stalls        <trace.jsonl>... [--format text|json]
//!                           [--k F] [--instant NAME] [--track NAME]
//!                           [--expected-gap F] [--min-events N] [--gate]
//! spice-trace diff          <a> <b> [--tolerance F] [--abs-epsilon F]
//!                           [--ignore SUBSTR]... [--format text|json] [--gate]
//! spice-trace flamegraph    <trace.jsonl>...
//! ```
//!
//! Inputs are telemetry JSONL exports (`Telemetry::jsonl`); `diff` also
//! accepts any single-document JSON file (benchmark reports). Output is
//! a pure function of the input bytes — byte-identical across repeated
//! runs — so goldens can pin it and CI can diff it. `--gate` flips the
//! exit code to 1 when stalls were detected / the diff is dirty, for use
//! as a CI tripwire.

use spice_obs::{diff, report, stall, trace::TraceModel};
use std::process::ExitCode;

const USAGE: &str = "usage: spice-trace {summary|critical-path|stalls|diff|flamegraph} <input>... [options]
  summary        span-duration quantiles, critical paths, metric highlights
  critical-path  heaviest root-to-leaf chain per track group
  stalls         steering stall windows (--k, --instant, --track, --expected-gap, --min-events, --gate)
  diff           compare two exports (--tolerance, --abs-epsilon, --ignore, --gate)
  flamegraph     collapsed stacks on stdout
  common options: --format {text|json}";

struct Cli {
    inputs: Vec<String>,
    format_json: bool,
    gate: bool,
    k: f64,
    instant: Option<String>,
    track: Option<String>,
    expected_gap: Option<f64>,
    min_events: Option<usize>,
    tolerance: f64,
    abs_epsilon: f64,
    ignore: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        inputs: Vec::new(),
        format_json: false,
        gate: false,
        k: 1.5,
        instant: None,
        track: None,
        expected_gap: None,
        min_events: None,
        tolerance: 0.1,
        abs_epsilon: 1e-9,
        ignore: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--format" => {
                cli.format_json = match value("--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "--gate" => cli.gate = true,
            "--k" => cli.k = parse_num(&value("--k")?, "--k")?,
            "--instant" => cli.instant = Some(value("--instant")?),
            "--track" => cli.track = Some(value("--track")?),
            "--expected-gap" => {
                cli.expected_gap = Some(parse_num(&value("--expected-gap")?, "--expected-gap")?)
            }
            "--min-events" => {
                cli.min_events = Some(
                    value("--min-events")?
                        .parse()
                        .map_err(|e| format!("--min-events: {e}"))?,
                )
            }
            "--tolerance" => cli.tolerance = parse_num(&value("--tolerance")?, "--tolerance")?,
            "--abs-epsilon" => {
                cli.abs_epsilon = parse_num(&value("--abs-epsilon")?, "--abs-epsilon")?
            }
            "--ignore" => cli.ignore.push(value("--ignore")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => cli.inputs.push(path.to_string()),
        }
    }
    if cli.inputs.is_empty() {
        return Err("no input files given".to_string());
    }
    Ok(cli)
}

fn parse_num(s: &str, flag: &str) -> Result<f64, String> {
    s.parse().map_err(|e| format!("{flag}: {e}"))
}

fn load_models(paths: &[String]) -> Result<Vec<(String, TraceModel)>, String> {
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
            let model = TraceModel::from_jsonl(&text).map_err(|e| format!("{p}: {e}"))?;
            Ok((p.clone(), model))
        })
        .collect()
}

fn run(cmd: &str, cli: &Cli) -> Result<bool, String> {
    let mut gate_tripped = false;
    match cmd {
        "summary" => {
            let models = load_models(&cli.inputs)?;
            let r = report::build(&models);
            if cli.format_json {
                println!("{}", r.to_json().render());
            } else {
                print!("{}", r.render_text());
            }
        }
        "critical-path" => {
            let models = load_models(&cli.inputs)?;
            let r = report::build(&models);
            if cli.format_json {
                // The critical_paths member of the summary JSON, alone.
                let full = r.to_json();
                let paths = full
                    .get("critical_paths")
                    .cloned()
                    .unwrap_or(spice_obs::Json::Obj(Vec::new()));
                println!("{}", paths.render());
            } else {
                for (track, steps) in &r.critical_paths {
                    print!("{track}:");
                    for s in steps {
                        print!(
                            " -> {} [{} ticks x{} {:.0}%]",
                            s.name,
                            s.total_ticks,
                            s.count,
                            s.share * 100.0
                        );
                    }
                    println!();
                }
            }
        }
        "stalls" => {
            let models = load_models(&cli.inputs)?;
            let mut cfg = stall::StallConfig {
                k: cli.k,
                track: cli.track.clone(),
                expected_gap: cli.expected_gap,
                ..stall::StallConfig::default()
            };
            if let Some(name) = &cli.instant {
                cfg.name = name.clone();
            }
            if let Some(n) = cli.min_events {
                cfg.min_events = n;
            }
            // Detection runs per input and merges track lists, so shard
            // cadences are learned per shard, not across them.
            let mut merged = stall::StallReport {
                k: cfg.k,
                name: cfg.name.clone(),
                ..stall::StallReport::default()
            };
            for (_, model) in &models {
                let r = stall::detect(model, &cfg);
                merged.tracks.extend(r.tracks);
                for m in r.steering_metrics {
                    if !merged.steering_metrics.contains(&m) {
                        merged.steering_metrics.push(m);
                    }
                }
            }
            if cli.format_json {
                println!("{}", merged.to_json().render());
            } else {
                print!("{}", merged.render_text());
            }
            gate_tripped = merged.total_windows() > 0;
        }
        "diff" => {
            if cli.inputs.len() != 2 {
                return Err("diff needs exactly two inputs".to_string());
            }
            let read = |p: &String| {
                std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))
            };
            let a = diff::flatten_input(&read(&cli.inputs[0])?)
                .map_err(|e| format!("{}: {e}", cli.inputs[0]))?;
            let b = diff::flatten_input(&read(&cli.inputs[1])?)
                .map_err(|e| format!("{}: {e}", cli.inputs[1]))?;
            let cfg = diff::DiffConfig {
                tolerance: cli.tolerance,
                abs_epsilon: cli.abs_epsilon,
                ignore: cli.ignore.clone(),
            };
            let r = diff::diff(&a, &b, &cfg);
            if cli.format_json {
                println!("{}", r.to_json(&cfg).render());
            } else {
                print!("{}", r.render_text(&cfg));
            }
            gate_tripped = !r.is_clean();
        }
        "flamegraph" => {
            let models = load_models(&cli.inputs)?;
            let mut merged = TraceModel::default();
            for (_, m) in models {
                merged.tracks.extend(m.tracks);
            }
            print!("{}", spice_obs::flame::collapsed(&merged));
        }
        other => return Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
    Ok(gate_tripped)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let cli = match parse_args(&args[1..]) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("spice-trace: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(cmd, &cli) {
        Ok(tripped) => {
            if tripped && cli.gate {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("spice-trace: {e}");
            ExitCode::from(2)
        }
    }
}
