//! `spice-obs`: the analysis layer over `spice-telemetry`.
//!
//! PR 4 gave every subsystem a deterministic telemetry substrate; this
//! crate is the consumer side — it turns recorded traces into answers:
//!
//! * [`histo`] — mergeable log-bucketed histograms whose merge is
//!   order-independent, so per-shard aggregates from the indexed DES and
//!   the clone-amortized ensembles combine into identical bytes in any
//!   order.
//! * [`critical`] — aggregated span trees and critical-path extraction:
//!   which of equilibrate / realization / grid.attempt / checkpoint.write
//!   dominates a campaign's logical wall time.
//! * [`stall`] — the steering **stall detector**, operationalizing the
//!   paper's §II/III observation (a 256-proc run stalling over commodity
//!   IP, staying interactive over the lightpath) as inter-arrival-gap
//!   windows on steering-exchange instants.
//! * [`diff`] — noise-aware A/B comparison of two exports (benchmark
//!   JSON or telemetry JSONL) for regression gating.
//! * [`flame`] — collapsed-stack flamegraph export.
//! * [`report`] — the `spice-trace summary` view: span-duration
//!   quantiles, per-group critical paths, and grid/checkpoint/steering
//!   highlight metrics.
//! * [`trace`] / [`json`] — the owned trace model and the dependency-free
//!   JSON value type both are built on.
//!
//! Everything here is a pure function of its input trace: no clocks, no
//! randomness, no environment reads — `spice-trace` output over the same
//! seeded trace is byte-identical across runs and platforms.

pub mod critical;
pub mod diff;
pub mod flame;
pub mod histo;
pub mod json;
pub mod report;
pub mod stall;
pub mod trace;

pub use critical::{critical_path, span_groups, CriticalStep, PathNode, TrackGroup};
pub use diff::{diff, flatten_input, DiffConfig, DiffReport};
pub use histo::{LogHistogram, QuantileSummary};
pub use json::Json;
pub use report::SummaryReport;
pub use stall::{detect, StallConfig, StallReport, StallWindow};
pub use trace::{MetricVal, TraceModel};
