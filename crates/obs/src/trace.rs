//! Trace model: a parsed, owned view of a telemetry export.
//!
//! `spice-telemetry` snapshots borrow `&'static str` names interned for
//! the process lifetime; the analysis layer instead works on an owned
//! [`TraceModel`] so it can be built either directly from an in-process
//! [`Snapshot`] or by parsing a JSONL export written by an earlier run.
//! Both construction paths produce identical models for the same trace,
//! which is what makes `spice-trace` output byte-reproducible.

use crate::json::{self, Json};
use spice_telemetry::{EventKind, MetricValue, Snapshot};

/// Span/instant kind, mirroring [`EventKind`] without the borrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvKind {
    /// Span open.
    Enter,
    /// Span close.
    Exit,
    /// Point event.
    Instant,
}

/// One event on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Enter/Exit/Instant.
    pub kind: EvKind,
    /// Span or instant name.
    pub name: String,
    /// Logical-clock stamp.
    pub logical: u64,
    /// Key/value attributes, in recorded order.
    pub attrs: Vec<(String, String)>,
}

/// One `(track, key)` event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTrack {
    /// Track name (e.g. `"steering.session"`).
    pub track: String,
    /// Logical key (realization index, client id, …).
    pub key: u64,
    /// Events in append order.
    pub events: Vec<TraceEvent>,
}

/// One exported metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricVal {
    /// Monotone counter.
    Counter(u64),
    /// Last-value gauge.
    Gauge(f64),
    /// Fixed-bucket histogram (bounds, counts incl. overflow, sum).
    Histogram {
        /// Upper bucket bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts; last entry is the overflow bucket.
        counts: Vec<u64>,
        /// Sum of observed values.
        sum: f64,
    },
}

/// A fully parsed trace: tracks in export order plus the metric listing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceModel {
    /// Event tracks, in `(name, key)` export order.
    pub tracks: Vec<TraceTrack>,
    /// Metrics, in name order.
    pub metrics: Vec<(String, MetricVal)>,
}

impl TraceModel {
    /// Build from an in-process snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> TraceModel {
        let tracks = snap
            .tracks
            .iter()
            .map(|t| TraceTrack {
                track: t.name.to_string(),
                key: t.key,
                events: t
                    .events
                    .iter()
                    .map(|e| TraceEvent {
                        kind: match e.kind {
                            EventKind::Enter => EvKind::Enter,
                            EventKind::Exit => EvKind::Exit,
                            EventKind::Instant => EvKind::Instant,
                        },
                        name: e.name.to_string(),
                        logical: e.logical,
                        attrs: e
                            .attrs
                            .iter()
                            .map(|(k, v)| (k.to_string(), v.clone()))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        let metrics = snap
            .metrics
            .iter()
            .map(|(name, v)| {
                let value = match v {
                    MetricValue::Counter(c) => MetricVal::Counter(*c),
                    MetricValue::Gauge(g) => MetricVal::Gauge(*g),
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum,
                    } => MetricVal::Histogram {
                        bounds: bounds.clone(),
                        counts: counts.clone(),
                        sum: *sum,
                    },
                };
                (name.clone(), value)
            })
            .collect();
        TraceModel { tracks, metrics }
    }

    /// Parse a JSONL export (the output of `Telemetry::jsonl`). Event
    /// lines are grouped back into tracks in first-seen order — which,
    /// for an export, is `(name, key)` order. Unknown line types are an
    /// error so silent drift between exporter and parser cannot hide.
    pub fn from_jsonl(text: &str) -> Result<TraceModel, String> {
        let mut model = TraceModel::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obj = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let ty = obj
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
            match ty {
                "enter" | "exit" | "instant" => {
                    let kind = match ty {
                        "enter" => EvKind::Enter,
                        "exit" => EvKind::Exit,
                        _ => EvKind::Instant,
                    };
                    let track = req_str(&obj, "track", lineno)?;
                    let key = req_u64(&obj, "key", lineno)?;
                    let name = req_str(&obj, "name", lineno)?;
                    let logical = req_u64(&obj, "logical", lineno)?;
                    let attrs = match obj.get("attrs") {
                        Some(Json::Obj(members)) => members
                            .iter()
                            .map(|(k, v)| {
                                let s = v
                                    .as_str()
                                    .ok_or_else(|| format!("line {}: non-string attr", lineno + 1))?
                                    .to_string();
                                Ok((k.clone(), s))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => Vec::new(),
                    };
                    let event = TraceEvent {
                        kind,
                        name,
                        logical,
                        attrs,
                    };
                    match model
                        .tracks
                        .iter_mut()
                        .find(|t| t.track == track && t.key == key)
                    {
                        Some(t) => t.events.push(event),
                        None => model.tracks.push(TraceTrack {
                            track,
                            key,
                            events: vec![event],
                        }),
                    }
                }
                "counter" => {
                    let name = req_str(&obj, "name", lineno)?;
                    let v = req_u64(&obj, "value", lineno)?;
                    model.metrics.push((name, MetricVal::Counter(v)));
                }
                "gauge" => {
                    let name = req_str(&obj, "name", lineno)?;
                    let v = obj.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN);
                    model.metrics.push((name, MetricVal::Gauge(v)));
                }
                "histogram" => {
                    let name = req_str(&obj, "name", lineno)?;
                    let bounds = num_array(&obj, "bounds", lineno)?;
                    let counts = num_array(&obj, "counts", lineno)?
                        .into_iter()
                        .map(|v| v as u64)
                        .collect();
                    let sum = obj.get("sum").and_then(Json::as_f64).unwrap_or(f64::NAN);
                    model.metrics.push((
                        name,
                        MetricVal::Histogram {
                            bounds,
                            counts,
                            sum,
                        },
                    ));
                }
                other => {
                    return Err(format!("line {}: unknown type {other:?}", lineno + 1));
                }
            }
        }
        Ok(model)
    }

    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .find_map(|(n, v)| match v {
                MetricVal::Counter(c) if n == name => Some(*c),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Gauge value by name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find_map(|(n, v)| match v {
            MetricVal::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// All tracks with the given name, in key order.
    pub fn tracks_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceTrack> {
        self.tracks.iter().filter(move |t| t.track == name)
    }

    /// Total event count across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

fn req_str(obj: &Json, key: &str, lineno: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: missing string {key:?}", lineno + 1))
}

fn req_u64(obj: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {}: missing integer {key:?}", lineno + 1))
}

fn num_array(obj: &Json, key: &str, lineno: usize) -> Result<Vec<f64>, String> {
    match obj.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("line {}: non-number in {key:?}", lineno + 1))
            })
            .collect(),
        _ => Err(format!("line {}: missing array {key:?}", lineno + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_telemetry::Telemetry;

    fn demo_telemetry() -> Telemetry {
        let t = Telemetry::enabled();
        let track = t.track("real", 1);
        {
            let _run = track.span_at("run", 0);
            track.tick(4);
            track.instant("mark", vec![("n", "2".to_string())]);
            track.tick(9);
        }
        t.counter("grid.jobs").add(7);
        t.set_gauge("work.mean", 1.25);
        let h = t.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(40.0);
        t
    }

    #[test]
    fn jsonl_round_trips_to_snapshot_model() {
        let t = demo_telemetry();
        let direct = TraceModel::from_snapshot(&t.snapshot());
        let parsed = TraceModel::from_jsonl(&t.jsonl()).expect("export parses");
        assert_eq!(direct, parsed);
        assert_eq!(parsed.counter("grid.jobs"), 7);
        assert_eq!(parsed.gauge("work.mean"), Some(1.25));
        assert_eq!(parsed.tracks.len(), 1);
        assert_eq!(parsed.tracks[0].events.len(), 3);
        assert_eq!(
            parsed.tracks[0].events[1].attrs,
            vec![("n".to_string(), "2".to_string())]
        );
    }

    #[test]
    fn unknown_line_type_is_an_error() {
        assert!(TraceModel::from_jsonl("{\"type\":\"mystery\"}\n").is_err());
        assert!(TraceModel::from_jsonl("not json\n").is_err());
        assert!(TraceModel::from_jsonl("\n\n")
            .expect("blank ok")
            .tracks
            .is_empty());
    }

    #[test]
    fn escaped_names_survive_the_round_trip() {
        use spice_telemetry::intern;
        let t = Telemetry::enabled();
        let name = intern("odd \"name\" with \\slash\\ and π");
        t.track(name, 0).instant(name, Vec::new());
        let parsed = TraceModel::from_jsonl(&t.jsonl()).expect("parses");
        assert_eq!(parsed.tracks[0].track, "odd \"name\" with \\slash\\ and π");
        assert_eq!(
            parsed.tracks[0].events[0].name,
            "odd \"name\" with \\slash\\ and π"
        );
    }
}
