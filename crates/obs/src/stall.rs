//! Steering stall detection.
//!
//! SPICE §II/III: the 256-processor interactive run stalled when the
//! bi-directional steering stream crossed unreliable commodity IP, and
//! stayed responsive over the dedicated lightpath. This module turns
//! that anecdote into a measurement. Steering exchanges are recorded as
//! named instants on per-session telemetry tracks; the detector learns
//! each track's *expected cadence* (the median inter-arrival gap, which
//! is robust against the very outliers being hunted) and flags a **stall
//! window** wherever a gap exceeds `k ×` that cadence. On the lightpath
//! profile gaps hug the median and the detector stays silent; on the
//! commodity profile every retransmit-inflated exchange lands far past
//! `k = 1.5` and is reported with its start/end stamp and severity
//! ratio.

use crate::json::Json;
use crate::trace::{EvKind, TraceModel};
use std::fmt::Write as _;

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct StallConfig {
    /// Instant name carrying the cadence signal.
    pub name: String,
    /// Only examine tracks with this name (None = all tracks).
    pub track: Option<String>,
    /// Stall threshold multiplier over the expected gap.
    pub k: f64,
    /// Expected inter-arrival gap override; None learns the median.
    pub expected_gap: Option<f64>,
    /// Minimum instants per track before cadence is trusted.
    pub min_events: usize,
}

impl Default for StallConfig {
    fn default() -> StallConfig {
        StallConfig {
            name: "steering.exchange".to_string(),
            track: None,
            k: 1.5,
            expected_gap: None,
            min_events: 8,
        }
    }
}

/// One detected stall window on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct StallWindow {
    /// Logical stamp of the last event before the stall.
    pub start: u64,
    /// Logical stamp of the event that ended it.
    pub end: u64,
    /// `end - start`.
    pub gap: u64,
    /// `gap / expected_gap` — severity; always > k.
    pub ratio: f64,
}

/// Per-track detection result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackStalls {
    /// Track name.
    pub track: String,
    /// Track key (session/client id).
    pub key: u64,
    /// Instants named [`StallConfig::name`] seen on this track.
    pub n_events: usize,
    /// Learned (or overridden) cadence in logical ticks.
    pub expected_gap: f64,
    /// Largest observed gap.
    pub max_gap: u64,
    /// Stall windows in stamp order.
    pub windows: Vec<StallWindow>,
}

/// Whole-trace detection result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StallReport {
    /// Threshold multiplier used.
    pub k: f64,
    /// Instant name examined.
    pub name: String,
    /// Per-track results for every track with enough events, in model
    /// (track, key) order.
    pub tracks: Vec<TrackStalls>,
    /// Steering service metrics surfaced alongside (name, rendered
    /// value), in name order: backlog watermarks, client lag quantiles.
    pub steering_metrics: Vec<(String, String)>,
}

impl StallReport {
    /// Total stall windows across all tracks.
    pub fn total_windows(&self) -> usize {
        self.tracks.iter().map(|t| t.windows.len()).sum()
    }
}

/// Median of a non-empty slice of gaps.
fn median(sorted: &[u64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    }
}

/// Run the detector over every qualifying track.
pub fn detect(model: &TraceModel, cfg: &StallConfig) -> StallReport {
    let mut report = StallReport {
        k: cfg.k,
        name: cfg.name.clone(),
        tracks: Vec::new(),
        steering_metrics: Vec::new(),
    };
    for track in &model.tracks {
        if let Some(want) = &cfg.track {
            if &track.track != want {
                continue;
            }
        }
        let mut stamps: Vec<u64> = track
            .events
            .iter()
            .filter(|e| e.kind == EvKind::Instant && e.name == cfg.name)
            .map(|e| e.logical)
            .collect();
        if stamps.len() < cfg.min_events.max(2) {
            continue;
        }
        // Live snapshots are monotone per track, but `from_jsonl` accepts
        // arbitrary user files; sort so an out-of-order trace yields true
        // inter-arrival gaps instead of u64 underflow.
        stamps.sort_unstable();
        let gaps: Vec<u64> = stamps.windows(2).map(|w| w[1] - w[0]).collect();
        let expected = cfg.expected_gap.unwrap_or_else(|| {
            let mut sorted = gaps.clone();
            sorted.sort_unstable();
            median(&sorted)
        });
        let mut windows = Vec::new();
        if expected > 0.0 {
            for (i, &gap) in gaps.iter().enumerate() {
                let ratio = gap as f64 / expected;
                if ratio > cfg.k {
                    windows.push(StallWindow {
                        start: stamps[i],
                        end: stamps[i + 1],
                        gap,
                        ratio,
                    });
                }
            }
        }
        report.tracks.push(TrackStalls {
            track: track.track.clone(),
            key: track.key,
            n_events: stamps.len(),
            expected_gap: expected,
            max_gap: gaps.iter().copied().max().unwrap_or(0),
            windows,
        });
    }
    for (name, value) in &model.metrics {
        if name.starts_with("steering.") {
            use crate::trace::MetricVal;
            let rendered = match value {
                MetricVal::Counter(c) => c.to_string(),
                MetricVal::Gauge(g) => crate::json::fmt_f64(*g),
                MetricVal::Histogram { counts, sum, .. } => {
                    let n: u64 = counts.iter().sum();
                    format!("n={n} sum={}", crate::json::fmt_f64(*sum))
                }
            };
            report.steering_metrics.push((name.clone(), rendered));
        }
    }
    report
}

impl StallReport {
    /// Human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stall report  instant={}  k={}",
            self.name,
            crate::json::fmt_f64(self.k)
        );
        if self.tracks.is_empty() {
            out.push_str("no tracks with enough events\n");
        }
        for t in &self.tracks {
            let _ = writeln!(
                out,
                "track {}/{}  events={}  expected_gap={}  max_gap={}  stalls={}",
                t.track,
                t.key,
                t.n_events,
                crate::json::fmt_f64(t.expected_gap),
                t.max_gap,
                t.windows.len()
            );
            for w in &t.windows {
                let _ = writeln!(
                    out,
                    "  stall [{} .. {}] gap={} ratio={:.2}",
                    w.start, w.end, w.gap, w.ratio
                );
            }
        }
        if !self.steering_metrics.is_empty() {
            out.push_str("steering metrics\n");
            for (name, v) in &self.steering_metrics {
                let _ = writeln!(out, "  {name:<42} = {v}");
            }
        }
        let _ = writeln!(out, "total stall windows: {}", self.total_windows());
        out
    }

    /// JSON rendering (deterministic member order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("instant".to_string(), Json::Str(self.name.clone())),
            ("k".to_string(), Json::Num(self.k)),
            (
                "total_windows".to_string(),
                Json::Num(self.total_windows() as f64),
            ),
            (
                "tracks".to_string(),
                Json::Arr(
                    self.tracks
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("track".to_string(), Json::Str(t.track.clone())),
                                ("key".to_string(), Json::Num(t.key as f64)),
                                ("events".to_string(), Json::Num(t.n_events as f64)),
                                ("expected_gap".to_string(), Json::Num(t.expected_gap)),
                                ("max_gap".to_string(), Json::Num(t.max_gap as f64)),
                                (
                                    "stalls".to_string(),
                                    Json::Arr(
                                        t.windows
                                            .iter()
                                            .map(|w| {
                                                Json::Obj(vec![
                                                    (
                                                        "start".to_string(),
                                                        Json::Num(w.start as f64),
                                                    ),
                                                    ("end".to_string(), Json::Num(w.end as f64)),
                                                    ("gap".to_string(), Json::Num(w.gap as f64)),
                                                    (
                                                        "ratio".to_string(),
                                                        Json::Num(
                                                            (w.ratio * 1000.0).round() / 1000.0,
                                                        ),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "steering_metrics".to_string(),
                Json::Obj(
                    self.steering_metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceModel;
    use spice_telemetry::Telemetry;

    /// A session with a steady cadence of 10 ticks and two injected
    /// stalls (gaps of 35 and 60).
    fn stalled_model() -> TraceModel {
        let t = Telemetry::enabled();
        let track = t.track("steering.session", 1);
        let mut clock = 0u64;
        for i in 0..20 {
            clock += match i {
                7 => 35,
                13 => 60,
                _ => 10,
            };
            track.instant_at("steering.exchange", clock, Vec::new());
        }
        t.counter("steering.backlog_watermark").add(4);
        TraceModel::from_snapshot(&t.snapshot())
    }

    #[test]
    fn detects_injected_stalls() {
        let report = detect(&stalled_model(), &StallConfig::default());
        assert_eq!(report.tracks.len(), 1);
        let t = &report.tracks[0];
        assert_eq!(t.expected_gap, 10.0, "median gap is the steady cadence");
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows[0].gap, 35);
        assert_eq!(t.windows[1].gap, 60);
        assert!((t.windows[0].ratio - 3.5).abs() < 1e-12);
        assert_eq!(t.max_gap, 60);
        assert_eq!(report.total_windows(), 2);
        assert_eq!(
            report.steering_metrics,
            vec![("steering.backlog_watermark".to_string(), "4".to_string())]
        );
    }

    #[test]
    fn steady_cadence_is_silent() {
        let t = Telemetry::enabled();
        let track = t.track("steering.session", 0);
        for i in 1..=30u64 {
            track.instant_at("steering.exchange", i * 10, Vec::new());
        }
        let report = detect(
            &TraceModel::from_snapshot(&t.snapshot()),
            &StallConfig::default(),
        );
        assert_eq!(report.total_windows(), 0);
        assert_eq!(report.tracks[0].expected_gap, 10.0);
    }

    #[test]
    fn too_few_events_is_no_verdict() {
        let t = Telemetry::enabled();
        let track = t.track("steering.session", 0);
        for i in 1..=3u64 {
            track.instant_at("steering.exchange", i * 100, Vec::new());
        }
        let report = detect(
            &TraceModel::from_snapshot(&t.snapshot()),
            &StallConfig::default(),
        );
        assert!(report.tracks.is_empty(), "cadence needs min_events");
    }

    #[test]
    fn zero_cadence_never_divides() {
        let t = Telemetry::enabled();
        let track = t.track("s", 0);
        for _ in 0..10 {
            track.instant_at("steering.exchange", 5, Vec::new());
        }
        let report = detect(
            &TraceModel::from_snapshot(&t.snapshot()),
            &StallConfig::default(),
        );
        assert_eq!(report.tracks[0].expected_gap, 0.0);
        assert!(report.tracks[0].windows.is_empty());
    }

    #[test]
    fn out_of_order_stamps_do_not_underflow() {
        // Hand-built JSONL with instants deliberately out of stamp order,
        // as an arbitrary user file may be. Sorted, the cadence is 10
        // with one injected gap of 60.
        let mut lines = String::new();
        for stamp in [40u64, 10, 30, 20, 120, 50, 60, 70, 80] {
            lines.push_str(&format!(
                "{{\"type\":\"instant\",\"track\":\"s\",\"key\":0,\
                 \"name\":\"steering.exchange\",\"logical\":{stamp}}}\n"
            ));
        }
        let model = TraceModel::from_jsonl(&lines).expect("parses");
        let report = detect(&model, &StallConfig::default());
        assert_eq!(report.tracks.len(), 1);
        assert_eq!(report.tracks[0].expected_gap, 10.0);
        assert_eq!(report.tracks[0].max_gap, 40, "gap 80 -> 120");
        assert_eq!(report.total_windows(), 1);
        assert_eq!(report.tracks[0].windows[0].start, 80);
        assert_eq!(report.tracks[0].windows[0].end, 120);
    }

    #[test]
    fn track_filter_and_gap_override() {
        let model = stalled_model();
        let none = detect(
            &model,
            &StallConfig {
                track: Some("other".to_string()),
                ..StallConfig::default()
            },
        );
        assert!(none.tracks.is_empty());
        let strict = detect(
            &model,
            &StallConfig {
                expected_gap: Some(100.0),
                ..StallConfig::default()
            },
        );
        assert_eq!(strict.total_windows(), 0, "generous cadence sees no stalls");
    }

    #[test]
    fn renderings_are_deterministic() {
        let report = detect(&stalled_model(), &StallConfig::default());
        assert_eq!(report.render_text(), report.render_text());
        assert_eq!(report.to_json().render(), report.to_json().render());
        assert!(report.render_text().contains("stalls=2"));
        assert!(report.to_json().render().contains("\"total_windows\":2"));
    }
}
