//! Critical-path extraction over aggregated span trees.
//!
//! Answers the budgeting question behind ROADMAP item 4: *which stage
//! dominates a campaign's logical wall time?* Tracks with the same name
//! (all realizations, all grid jobs) are folded into one aggregated tree
//! per track-name group; the critical path then descends from the group
//! root through the heaviest child at every level, attributing inclusive
//! ticks, self ticks (inclusive minus children), and the share of the
//! group total to each step — so "equilibrate vs realization vs
//! grid.attempt vs checkpoint.write" becomes one ranked listing.

use crate::trace::{EvKind, TraceModel, TraceTrack};
use std::collections::BTreeMap;

/// One aggregated span-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct PathNode {
    /// Span name.
    pub name: String,
    /// Number of closed span instances folded in.
    pub count: u64,
    /// Inclusive logical ticks across all instances.
    pub total_ticks: u64,
    /// Exclusive ticks: `total_ticks` minus the children's totals.
    pub self_ticks: u64,
    /// Child nodes, name-sorted.
    pub children: Vec<PathNode>,
}

/// The aggregated tree of one track-name group.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackGroup {
    /// Track name shared by the folded tracks.
    pub track: String,
    /// Number of `(track, key)` streams folded in.
    pub n_tracks: u64,
    /// Virtual root; its children are the group's top-level spans and
    /// its `total_ticks` is their sum.
    pub root: PathNode,
}

/// One step of a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Span name at this depth.
    pub name: String,
    /// Instances folded into this node.
    pub count: u64,
    /// Inclusive ticks.
    pub total_ticks: u64,
    /// Exclusive ticks.
    pub self_ticks: u64,
    /// Share of the group root total, in [0, 1].
    pub share: f64,
}

#[derive(Default)]
struct Builder {
    count: u64,
    ticks: u64,
    children: BTreeMap<String, Builder>,
}

impl Builder {
    fn into_node(self, name: String) -> PathNode {
        let children: Vec<PathNode> = self
            .children
            .into_iter()
            .map(|(child_name, b)| b.into_node(child_name))
            .collect();
        let child_ticks: u64 = children.iter().map(|c| c.total_ticks).sum();
        PathNode {
            name,
            count: self.count,
            total_ticks: self.ticks,
            // A child clamped by the monotone track clock can report a
            // tick or two more than its parent span; saturate to zero
            // rather than wrap.
            self_ticks: self.ticks.saturating_sub(child_ticks),
            children,
        }
    }
}

/// Fold one track's Enter/Exit stream into `root`. Mirrors the
/// exporter's summary-tree fold: unmatched exits are dropped, unclosed
/// spans close at the track's final clock.
fn fold_track(track: &TraceTrack, root: &mut Builder) {
    let final_clock = track.events.last().map_or(0, |e| e.logical);
    let mut stack: Vec<(&str, u64)> = Vec::new();
    let close = |root: &mut Builder, stack: &[(&str, u64)], at: u64| {
        let mut node = &mut *root;
        for (name, _) in stack {
            node = node.children.entry((*name).to_string()).or_default();
        }
        node.count += 1;
        let entered = stack.last().map_or(0, |(_, t)| *t);
        node.ticks += at.saturating_sub(entered);
    };
    for e in &track.events {
        match e.kind {
            EvKind::Enter => stack.push((&e.name, e.logical)),
            EvKind::Exit => {
                if !stack.is_empty() {
                    close(root, &stack, e.logical);
                    stack.pop();
                }
            }
            EvKind::Instant => {}
        }
    }
    while !stack.is_empty() {
        close(root, &stack, final_clock);
        stack.pop();
    }
}

/// Aggregate every track in the model into per-track-name groups, in
/// track-name order. Groups with no spans (instant-only tracks) are
/// omitted.
pub fn span_groups(model: &TraceModel) -> Vec<TrackGroup> {
    let mut by_name: BTreeMap<&str, (u64, Builder)> = BTreeMap::new();
    for track in &model.tracks {
        let (n, builder) = by_name.entry(&track.track).or_default();
        *n += 1;
        fold_track(track, builder);
    }
    by_name
        .into_iter()
        .filter(|(_, (_, b))| !b.children.is_empty())
        .map(|(name, (n_tracks, b))| {
            let mut root = b.into_node(String::new());
            root.total_ticks = root.children.iter().map(|c| c.total_ticks).sum();
            root.self_ticks = 0;
            TrackGroup {
                track: name.to_string(),
                n_tracks,
                root,
            }
        })
        .collect()
}

/// The heaviest root-to-leaf chain of a group: descend through the
/// child with the largest inclusive ticks (ties broken by name order,
/// which `children` already encodes). The root itself is not a step.
pub fn critical_path(group: &TrackGroup) -> Vec<CriticalStep> {
    let denom = group.root.total_ticks.max(1) as f64;
    let mut steps = Vec::new();
    let mut node = &group.root;
    while let Some(heaviest) = node.children.iter().max_by(|a, b| {
        a.total_ticks
            .cmp(&b.total_ticks)
            .then_with(|| b.name.cmp(&a.name)) // prefer earlier name on ties
    }) {
        steps.push(CriticalStep {
            name: heaviest.name.clone(),
            count: heaviest.count,
            total_ticks: heaviest.total_ticks,
            self_ticks: heaviest.self_ticks,
            share: heaviest.total_ticks as f64 / denom,
        });
        node = heaviest;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceModel;
    use spice_telemetry::Telemetry;

    fn demo_model() -> TraceModel {
        let t = Telemetry::enabled();
        // Two realizations on the same track name: run{equilibrate,pull}.
        for key in 0..2 {
            let track = t.track("real", key);
            let _run = track.span_at("run", 0);
            {
                let _eq = track.span_at("equilibrate", 0);
                track.tick(10);
            }
            {
                let _pull = track.span_at("pull", 10);
                track.tick(40);
            }
            track.tick(42);
        }
        // A second group with a different shape.
        let g = t.track("grid", 0);
        {
            let _c = g.span_at("campaign", 0);
            {
                let _a = g.span_at("attempt", 0);
                g.tick(7);
            }
            g.tick(8);
        }
        TraceModel::from_snapshot(&t.snapshot())
    }

    #[test]
    fn groups_fold_same_named_tracks() {
        let groups = span_groups(&demo_model());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].track, "grid");
        assert_eq!(groups[1].track, "real");
        assert_eq!(groups[1].n_tracks, 2);
        let run = &groups[1].root.children[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.count, 2);
        assert_eq!(run.total_ticks, 84, "42 ticks x 2 realizations");
        // self = 84 - (equilibrate 20 + pull 60)
        assert_eq!(run.self_ticks, 4);
        assert_eq!(run.children.len(), 2);
    }

    #[test]
    fn critical_path_descends_heaviest_child() {
        let groups = span_groups(&demo_model());
        let real = groups.iter().find(|g| g.track == "real").unwrap();
        let path = critical_path(real);
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["run", "pull"], "pull (60) beats equilibrate (20)");
        assert!((path[0].share - 1.0).abs() < 1e-12);
        assert!((path[1].share - 60.0 / 84.0).abs() < 1e-12);
    }

    #[test]
    fn instant_only_tracks_form_no_group() {
        let t = Telemetry::enabled();
        t.track("msgs", 0).instant("ping", Vec::new());
        let groups = span_groups(&TraceModel::from_snapshot(&t.snapshot()));
        assert!(groups.is_empty());
    }

    #[test]
    fn empty_model_yields_no_paths() {
        let groups = span_groups(&TraceModel::default());
        assert!(groups.is_empty());
    }
}
