//! Structural observables over particle groups.
//!
//! These feed Fig. 3's analysis (DNA extension / stretching along the
//! pore) and general trajectory monitoring.

use crate::system::System;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Cumulative pair-kernel work counters for one simulation: how often the
/// neighbor list was rebuilt, how many times the non-bonded kernel ran,
/// and how many (tiered, post-exclusion) pairs it visited in total. These
/// are the raw numbers behind pairs/sec throughput reporting and make
/// neighbor-list health visible in run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Verlet-list rebuilds since the simulation was created.
    pub neighbor_rebuilds: u64,
    /// Non-bonded kernel invocations (normally one per step plus one per
    /// force refresh).
    pub kernel_invocations: u64,
    /// Total pairs iterated by the tiered kernel across all invocations.
    pub pairs_evaluated: u64,
}

impl KernelCounters {
    /// Mean pairs visited per kernel invocation; 0 when never invoked.
    pub fn pairs_per_invocation(&self) -> f64 {
        if self.kernel_invocations == 0 {
            0.0
        } else {
            self.pairs_evaluated as f64 / self.kernel_invocations as f64
        }
    }

    /// Mean kernel invocations between neighbor rebuilds; 0 when the list
    /// was never rebuilt.
    pub fn invocations_per_rebuild(&self) -> f64 {
        if self.neighbor_rebuilds == 0 {
            0.0
        } else {
            self.kernel_invocations as f64 / self.neighbor_rebuilds as f64
        }
    }

    /// Accumulate this snapshot into `t`'s global `md.*` counters.
    /// Counter sums commute, so concurrent realizations publishing their
    /// totals produce one deterministic aggregate however the scheduler
    /// interleaved them — the ensemble-side registry wiring (single
    /// evaluators bind live views via `NonBonded::bind_telemetry`).
    pub fn publish(&self, t: &spice_telemetry::Telemetry) {
        t.counter("md.neighbor_rebuilds")
            .add(self.neighbor_rebuilds);
        t.counter("md.kernel_invocations")
            .add(self.kernel_invocations);
        t.counter("md.pairs_evaluated").add(self.pairs_evaluated);
    }
}

/// End-to-end distance of an ordered chain of particle indices.
pub fn end_to_end(system: &System, chain: &[usize]) -> f64 {
    if chain.len() < 2 {
        return 0.0;
    }
    let last = *chain.last().expect("chain has >= 2 beads: checked above");
    (system.positions()[last] - system.positions()[chain[0]]).norm()
}

/// Contour length: sum of consecutive bead separations along a chain.
pub fn contour_length(system: &System, chain: &[usize]) -> f64 {
    chain
        .windows(2)
        .map(|w| (system.positions()[w[1]] - system.positions()[w[0]]).norm())
        .sum()
}

/// Mean consecutive-bead spacing along a chain (Å); `NaN` for < 2 beads.
pub fn mean_bead_spacing(system: &System, chain: &[usize]) -> f64 {
    if chain.len() < 2 {
        return f64::NAN;
    }
    contour_length(system, chain) / (chain.len() - 1) as f64
}

/// Per-link bead spacings paired with the link midpoint z-coordinate —
/// the raw data behind Fig. 3's "strand stretches near the constriction".
pub fn spacing_profile(system: &System, chain: &[usize]) -> Vec<(f64, f64)> {
    chain
        .windows(2)
        .map(|w| {
            let a = system.positions()[w[0]];
            let b = system.positions()[w[1]];
            (0.5 * (a.z + b.z), (b - a).norm())
        })
        .collect()
}

/// Radius of gyration of a group (mass-weighted).
pub fn radius_of_gyration(system: &System, group: &[usize]) -> f64 {
    if group.is_empty() {
        return 0.0;
    }
    let com = system.center_of_mass_of(group.iter().copied());
    let mut num = 0.0;
    let mut den = 0.0;
    for &i in group {
        let m = system.masses()[i];
        num += m * (system.positions()[i] - com).norm_sq();
        den += m;
    }
    (num / den).sqrt()
}

/// z-coordinate of a group's center of mass (the SMD reaction coordinate:
/// the paper computes the PMF along the vertical pore axis).
pub fn com_z(system: &System, group: &[usize]) -> f64 {
    system.center_of_mass_of(group.iter().copied()).z
}

/// Center of mass of a group.
pub fn com(system: &System, group: &[usize]) -> Vec3 {
    system.center_of_mass_of(group.iter().copied())
}

/// Axial occupancy: bead count per z-bin over `[z_lo, z_hi)` for a group.
/// The time-average of this profile is the translocation-progress
/// observable (how much of the strand is inside the barrel at any time).
pub fn axial_density(
    system: &System,
    group: &[usize],
    z_lo: f64,
    z_hi: f64,
    nbins: usize,
) -> Vec<u32> {
    assert!(nbins > 0 && z_hi > z_lo);
    let width = (z_hi - z_lo) / nbins as f64;
    let mut bins = vec![0u32; nbins];
    for &i in group {
        let z = system.positions()[i].z;
        if z >= z_lo && z < z_hi {
            let idx = (((z - z_lo) / width) as usize).min(nbins - 1);
            bins[idx] += 1;
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_system(zs: &[f64]) -> (System, Vec<usize>) {
        let mut s = System::new();
        let idx: Vec<usize> = zs
            .iter()
            .map(|&z| s.add_particle(Vec3::new(0.0, 0.0, z), 2.0, 0.0, 0))
            .collect();
        (s, idx)
    }

    #[test]
    fn end_to_end_straight_chain() {
        let (s, idx) = chain_system(&[0.0, 1.0, 2.0, 3.0]);
        assert!((end_to_end(&s, &idx) - 3.0).abs() < 1e-12);
        assert!((contour_length(&s, &idx) - 3.0).abs() < 1e-12);
        assert!((mean_bead_spacing(&s, &idx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contour_exceeds_end_to_end_for_bent_chain() {
        let mut s = System::new();
        let idx = vec![
            s.add_particle(Vec3::new(0.0, 0.0, 0.0), 1.0, 0.0, 0),
            s.add_particle(Vec3::new(1.0, 0.0, 0.0), 1.0, 0.0, 0),
            s.add_particle(Vec3::new(1.0, 1.0, 0.0), 1.0, 0.0, 0),
        ];
        assert!(contour_length(&s, &idx) > end_to_end(&s, &idx));
    }

    #[test]
    fn spacing_profile_locates_stretch() {
        // Chain with one stretched link between z=2 and z=4.
        let (s, idx) = chain_system(&[0.0, 1.0, 2.0, 4.0, 5.0]);
        let prof = spacing_profile(&s, &idx);
        let (widest_mid, widest) = prof
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(widest, 2.0);
        assert_eq!(widest_mid, 3.0);
    }

    #[test]
    fn rg_of_point_is_zero() {
        let (s, idx) = chain_system(&[5.0]);
        assert_eq!(radius_of_gyration(&s, &idx), 0.0);
        assert_eq!(radius_of_gyration(&s, &[]), 0.0);
    }

    #[test]
    fn rg_of_symmetric_pair() {
        let (s, idx) = chain_system(&[-1.0, 1.0]);
        // Each bead 1 Å from COM.
        assert!((radius_of_gyration(&s, &idx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn com_z_tracks_group() {
        let (s, idx) = chain_system(&[0.0, 2.0]);
        assert!((com_z(&s, &idx) - 1.0).abs() < 1e-12);
        assert!((com_z(&s, &idx[1..]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn axial_density_counts_by_bin() {
        let (s, idx) = chain_system(&[0.5, 1.5, 1.7, 9.0, -2.0]);
        let bins = axial_density(&s, &idx, 0.0, 10.0, 10);
        assert_eq!(bins[0], 1);
        assert_eq!(bins[1], 2);
        assert_eq!(bins[9], 1);
        assert_eq!(bins.iter().sum::<u32>(), 4, "out-of-range bead excluded");
    }

    #[test]
    fn kernel_counter_ratios() {
        let c = KernelCounters {
            neighbor_rebuilds: 4,
            kernel_invocations: 100,
            pairs_evaluated: 5000,
        };
        assert_eq!(c.pairs_per_invocation(), 50.0);
        assert_eq!(c.invocations_per_rebuild(), 25.0);
        let zero = KernelCounters::default();
        assert_eq!(zero.pairs_per_invocation(), 0.0);
        assert_eq!(zero.invocations_per_rebuild(), 0.0);
    }

    #[test]
    fn degenerate_chains() {
        let (s, idx) = chain_system(&[1.0]);
        assert_eq!(end_to_end(&s, &idx), 0.0);
        assert!(mean_bead_spacing(&s, &idx).is_nan());
        assert!(spacing_profile(&s, &idx).is_empty());
    }
}
