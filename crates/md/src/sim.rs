//! The simulation driver: owns the system, force field, integrator and
//! bias, advances time, and calls registered step hooks.
//!
//! The hook mechanism is the paper's grid-enablement point: "rather than
//! wholesale refactoring of codes, grid-enablement should be carried out
//! by interfacing the application codes to suitable grid middleware
//! through well defined user-level APIs" (§V-B). `spice-steering`'s
//! sim-side library is exactly a [`StepHook`]; the MD code never learns
//! about grids, messages, or visualizers.

use crate::forces::{Energies, ForceField};
use crate::integrate::Integrator;
use crate::system::System;
use crate::vec3::Vec3;
use crate::MdError;
use spice_telemetry::{ProbePoint, Telemetry, Track};

/// A per-step bias force (SMD pulling spring, IMD user force). Applied
/// inside the force evaluation so integrator sub-steps see it.
pub trait BiasForce: Send {
    /// Add bias forces for the current positions at simulation time
    /// `t_ps`; returns the bias energy (kcal/mol).
    fn apply(&self, positions: &[Vec3], forces: &mut [Vec3], t_ps: f64) -> f64;
}

/// What a hook wants the driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Keep integrating.
    Continue,
    /// Stop the current `run` call after this step.
    Stop,
}

/// Context handed to hooks after each completed step.
pub struct HookContext<'a> {
    /// Mutable system state — hooks may perturb it (IMD steering does).
    pub system: &'a mut System,
    /// Completed step count.
    pub step: u64,
    /// Simulation time (ps).
    pub time_ps: f64,
    /// Energy breakdown from the most recent force evaluation.
    pub energies: Energies,
    /// Bias energy from the most recent force evaluation.
    pub bias_energy: f64,
}

/// Observer invoked after every step (or every `stride` steps via
/// [`Simulation::run_with_hooks`]).
pub trait StepHook {
    /// Inspect/perturb the state; return [`HookAction::Stop`] to end the
    /// run early.
    fn on_step(&mut self, ctx: &mut HookContext<'_>) -> HookAction;
}

/// Blanket impl so plain closures can be hooks.
impl<F: FnMut(&mut HookContext<'_>) -> HookAction> StepHook for F {
    fn on_step(&mut self, ctx: &mut HookContext<'_>) -> HookAction {
        self(ctx)
    }
}

/// A complete, runnable MD simulation.
pub struct Simulation {
    system: System,
    force_field: ForceField,
    integrator: Box<dyn Integrator + Send>,
    bias: Option<Box<dyn BiasForce>>,
    dt: f64,
    step: u64,
    last_energies: Energies,
    last_bias_energy: f64,
    /// Steps between numerical-health checks.
    blowup_check_stride: u64,
    /// Instrumentation handles; disabled (zero-cost checks) by default.
    telemetry: Telemetry,
    track: Track,
    /// Rebuild count at the last probe, for rebuild-edge detection.
    last_rebuilds: u64,
}

impl Simulation {
    /// Assemble a simulation. `dt` is the time step in ps.
    ///
    /// # Panics
    /// Panics if `dt <= 0`.
    pub fn new(
        system: System,
        force_field: ForceField,
        integrator: Box<dyn Integrator + Send>,
        dt: f64,
    ) -> Self {
        assert!(dt > 0.0, "time step must be positive");
        let mut sim = Simulation {
            system,
            force_field,
            integrator,
            bias: None,
            dt,
            step: 0,
            last_energies: Energies::default(),
            last_bias_energy: 0.0,
            blowup_check_stride: 100,
            telemetry: Telemetry::disabled(),
            track: Track::disabled(),
            last_rebuilds: 0,
        };
        sim.refresh_forces();
        sim
    }

    /// Attach instrumentation: per-step force-eval / Verlet-rebuild
    /// probes fire on `t`, and span/instant events land on `track` (its
    /// logical clock is this simulation's step counter). Attaching never
    /// perturbs the trajectory — instrumented runs stay bit-identical.
    ///
    /// Kernel-counter export is separate on purpose: a lone simulation
    /// can bind live registry views via
    /// `force_field().bind_telemetry(t)`, while concurrent ensemble
    /// realizations publish snapshot totals with
    /// [`crate::observables::KernelCounters::publish`] (commutative
    /// sums; a live bind would be last-writer-wins across threads).
    pub fn attach_telemetry(&mut self, t: &Telemetry, track: Track) {
        self.telemetry = t.clone();
        self.track = track;
        self.last_rebuilds = self.force_field.kernel_counters().neighbor_rebuilds;
    }

    /// Install (or clear) the bias force.
    pub fn set_bias(&mut self, bias: Option<Box<dyn BiasForce>>) {
        self.bias = bias;
        self.refresh_forces();
    }

    /// Recompute forces for the current positions (force field + bias).
    pub fn refresh_forces(&mut self) {
        let energies = self.force_field.evaluate(&mut self.system);
        self.last_energies = energies;
        self.last_bias_energy = if let Some(bias) = &self.bias {
            let t = self.time_ps();
            let (positions, _, _, forces) = self.system.force_eval_view();
            bias.apply(positions, forces, t)
        } else {
            0.0
        };
    }

    /// Advance exactly one step.
    pub fn step_once(&mut self) {
        let Simulation {
            system,
            force_field,
            integrator,
            bias,
            dt,
            step,
            last_energies,
            last_bias_energy,
            ..
        } = self;
        // Time at the END of the step — bias forces evaluated mid-step use
        // the updated pulling-guide position, consistent with the guide
        // moving during the step.
        let t_next = (*step + 1) as f64 * *dt;
        let mut eval = |s: &mut System| {
            *last_energies = force_field.evaluate(s);
            *last_bias_energy = if let Some(b) = bias {
                let (positions, _, _, forces) = s.force_eval_view();
                b.apply(positions, forces, t_next)
            } else {
                0.0
            };
        };
        integrator.step(system, *dt, *step, &mut eval);
        self.step += 1;
        #[cfg(feature = "audit")]
        crate::audit::check_finite_state(&self.system, self.step);
        if self.telemetry.is_enabled() {
            self.track.tick(self.step);
            self.telemetry
                .probe(ProbePoint::ForceEval, self.step, self.last_energies.total());
            let rebuilds = self.force_field.kernel_counters().neighbor_rebuilds;
            if rebuilds != self.last_rebuilds {
                self.last_rebuilds = rebuilds;
                self.telemetry
                    .probe(ProbePoint::VerletRebuild, self.step, rebuilds as f64);
                self.track.instant("md.verlet_rebuild", Vec::new());
            }
        }
    }

    /// Run `nsteps` steps, invoking each hook after every step. Stops
    /// early (without error) when any hook returns [`HookAction::Stop`].
    /// Checks numerical health periodically.
    pub fn run(&mut self, nsteps: u64, hooks: &mut [&mut dyn StepHook]) -> Result<u64, MdError> {
        let _span = if self.track.is_enabled() {
            Some(self.track.span("md.run"))
        } else {
            None
        };
        let mut done = 0;
        for _ in 0..nsteps {
            self.step_once();
            done += 1;
            if self.step.is_multiple_of(self.blowup_check_stride) && !self.system.is_finite() {
                return Err(MdError::NumericalBlowup {
                    step: self.step,
                    what: "non-finite coordinate or velocity".into(),
                });
            }
            let mut stop = false;
            let mut ctx = HookContext {
                system: &mut self.system,
                step: self.step,
                time_ps: self.step as f64 * self.dt,
                energies: self.last_energies,
                bias_energy: self.last_bias_energy,
            };
            for hook in hooks.iter_mut() {
                if hook.on_step(&mut ctx) == HookAction::Stop {
                    stop = true;
                }
            }
            if stop {
                break;
            }
        }
        Ok(done)
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Simulation time (ps).
    pub fn time_ps(&self) -> f64 {
        self.step as f64 * self.dt
    }

    /// Time step (ps).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The particle state.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable particle state (steering uses this for checkpoint restore
    /// and IMD perturbations between steps).
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// The force field (topology, groups).
    pub fn force_field(&self) -> &ForceField {
        &self.force_field
    }

    /// Pair-kernel work counters accumulated since construction (neighbor
    /// rebuilds, kernel invocations, pairs evaluated).
    pub fn kernel_counters(&self) -> crate::observables::KernelCounters {
        self.force_field.kernel_counters()
    }

    /// Most recent force-field energy breakdown.
    pub fn energies(&self) -> Energies {
        self.last_energies
    }

    /// Most recent bias energy.
    pub fn bias_energy(&self) -> f64 {
        self.last_bias_energy
    }

    /// Integrator name (diagnostics).
    pub fn integrator_name(&self) -> &str {
        self.integrator.name()
    }

    /// Overwrite the step counter (checkpoint restore).
    pub(crate) fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    /// Thermostat parameters when the integrator is BAOAB Langevin (see
    /// [`Integrator::langevin_params`]); the batched ensemble engine uses
    /// these to replicate the update across replica lanes.
    pub fn langevin_params(&self) -> Option<(f64, f64, u64)> {
        self.integrator.langevin_params()
    }

    /// Decompose into the pieces the batched engine needs:
    /// `(system, force_field, dt, step)`. The integrator and bias are
    /// dropped — the batched engine re-creates both per replica lane.
    pub(crate) fn into_parts(self) -> (System, ForceField, f64, u64) {
        (self.system, self.force_field, self.dt, self.step)
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("particles", &self.system.len())
            .field("step", &self.step)
            .field("dt_ps", &self.dt)
            .field("integrator", &self.integrator.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::Restraint;
    use crate::integrate::{LangevinBaoab, VelocityVerlet};
    use crate::topology::Topology;

    fn well_sim(seed: u64) -> Simulation {
        let mut sys = System::new();
        sys.add_particle(Vec3::new(1.0, 0.0, 0.0), 10.0, 0.0, 0);
        let ff = ForceField::new(Topology::new()).with_restraint(Restraint::harmonic(
            0,
            Vec3::zero(),
            2.0,
        ));
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 5.0, seed)),
            0.01,
        )
    }

    #[test]
    fn run_advances_time() {
        let mut sim = well_sim(1);
        sim.run(100, &mut []).unwrap();
        assert_eq!(sim.step_count(), 100);
        assert!((sim.time_ps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hooks_observe_every_step() {
        let mut sim = well_sim(2);
        let mut seen = Vec::new();
        let mut hook = |ctx: &mut HookContext<'_>| {
            seen.push(ctx.step);
            HookAction::Continue
        };
        sim.run(5, &mut [&mut hook]).unwrap();
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn hook_can_stop_early() {
        let mut sim = well_sim(3);
        let mut hook = |ctx: &mut HookContext<'_>| {
            if ctx.step >= 3 {
                HookAction::Stop
            } else {
                HookAction::Continue
            }
        };
        let done = sim.run(100, &mut [&mut hook]).unwrap();
        assert_eq!(done, 3);
        assert_eq!(sim.step_count(), 3);
    }

    #[test]
    fn bias_force_affects_trajectory() {
        struct ConstantPush;
        impl BiasForce for ConstantPush {
            fn apply(&self, _p: &[Vec3], forces: &mut [Vec3], _t: f64) -> f64 {
                forces[0] += Vec3::new(0.0, 0.0, 5.0);
                0.0
            }
        }
        let mut with_bias = well_sim(4);
        with_bias.set_bias(Some(Box::new(ConstantPush)));
        let mut without = well_sim(4);
        with_bias.run(500, &mut []).unwrap();
        without.run(500, &mut []).unwrap();
        let dz = with_bias.system().positions()[0].z - without.system().positions()[0].z;
        assert!(dz > 0.1, "constant push must displace particle: dz={dz}");
    }

    #[test]
    #[cfg(not(feature = "audit"))]
    fn blowup_detected() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let ff = ForceField::new(Topology::new());
        let mut sim = Simulation::new(sys, ff, Box::new(VelocityVerlet), 0.01);
        sim.system_mut().velocities_mut()[0] = Vec3::new(f64::NAN, 0.0, 0.0);
        let err = sim.run(200, &mut []).unwrap_err();
        assert!(matches!(err, MdError::NumericalBlowup { .. }));
    }

    /// With the audit sanitizer live, the same blowup is caught at the
    /// layer boundary (panic) before the engine's own detection returns
    /// its `Err` — the sanitizer is strictly earlier.
    #[test]
    #[cfg(feature = "audit")]
    #[should_panic(expected = "spice-audit[md.finite_state]")]
    fn blowup_detected() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let ff = ForceField::new(Topology::new());
        let mut sim = Simulation::new(sys, ff, Box::new(VelocityVerlet), 0.01);
        sim.system_mut().velocities_mut()[0] = Vec3::new(f64::NAN, 0.0, 0.0);
        let _ = sim.run(200, &mut []);
    }

    #[test]
    fn deterministic_across_identical_sims() {
        let run = |seed| {
            let mut sim = well_sim(seed);
            sim.run(200, &mut []).unwrap();
            sim.system().positions()[0]
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
