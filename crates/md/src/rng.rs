//! Counter-based deterministic Gaussian noise.
//!
//! Langevin dynamics needs one independent standard normal per particle,
//! per axis, per step. Drawing them from a single sequential RNG would make
//! trajectories depend on thread scheduling; instead each draw is a pure
//! function of `(seed, counter)` via SplitMix64 mixing + Box–Muller, so a
//! rayon-parallel integrator produces bit-identical trajectories to the
//! serial one. This is the same design philosophy as Random123/Philox
//! counter-based RNGs.

use spice_stats::rng::splitmix64;

/// Map a 64-bit word to a uniform in the open interval (0, 1).
#[inline]
fn u64_to_open01(u: u64) -> f64 {
    // 53 significant bits, then shift into (0,1) by a half-ulp offset.
    ((u >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
}

/// A stateless stream of standard-normal deviates indexed by counters.
#[derive(Debug, Clone, Copy)]
pub struct GaussianStream {
    seed: u64,
}

impl GaussianStream {
    /// Stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        GaussianStream { seed }
    }

    /// Standard normal for logical coordinates `(a, b)` — typically
    /// `(particle, axis)` or `(step*3+axis, particle)`. Pure function of
    /// `(seed, a, b)`.
    #[inline]
    pub fn sample(&self, a: u64, b: u64) -> f64 {
        // Derive two independent uniforms from the (a, b) counter pair and
        // Box-Muller them. Using distinct tweaks keeps u1, u2 decorrelated.
        let base = splitmix64(self.seed ^ splitmix64(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b));
        let u1 = u64_to_open01(splitmix64(base ^ 0x5851_F42D_4C95_7F2D));
        let u2 = u64_to_open01(splitmix64(base ^ 0x1405_7B7E_F767_814F));
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Standard normal for a 3-index counter `(step, particle, axis)`.
    #[inline]
    pub fn sample3(&self, step: u64, particle: u64, axis: u64) -> f64 {
        self.sample(step.wrapping_mul(3).wrapping_add(axis), particle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_stats::RunningStats;

    #[test]
    fn deterministic() {
        let g = GaussianStream::new(7);
        assert_eq!(g.sample(1, 2), g.sample(1, 2));
        assert_ne!(g.sample(1, 2), g.sample(2, 1));
        assert_ne!(
            GaussianStream::new(7).sample(0, 0),
            GaussianStream::new(8).sample(0, 0)
        );
    }

    #[test]
    fn moments_are_standard_normal() {
        let g = GaussianStream::new(1234);
        let mut rs = RunningStats::new();
        for a in 0..200u64 {
            for b in 0..500u64 {
                rs.push(g.sample(a, b));
            }
        }
        assert!(rs.mean().abs() < 0.01, "mean {}", rs.mean());
        assert!((rs.variance() - 1.0).abs() < 0.02, "var {}", rs.variance());
        assert!(rs.skewness().abs() < 0.03, "skew {}", rs.skewness());
        assert!(rs.kurtosis().abs() < 0.08, "kurt {}", rs.kurtosis());
    }

    #[test]
    fn adjacent_counters_uncorrelated() {
        let g = GaussianStream::new(5);
        let n = 50_000u64;
        let mut sum = 0.0;
        for i in 0..n {
            sum += g.sample(i, 0) * g.sample(i + 1, 0);
        }
        let corr = sum / n as f64;
        assert!(corr.abs() < 0.02, "lag-1 correlation {corr}");
    }

    #[test]
    fn sample3_distinct_axes() {
        let g = GaussianStream::new(3);
        let x = g.sample3(10, 4, 0);
        let y = g.sample3(10, 4, 1);
        let z = g.sample3(10, 4, 2);
        assert!(x != y && y != z && x != z);
    }

    #[test]
    fn values_are_finite() {
        let g = GaussianStream::new(0);
        for a in 0..1000 {
            let v = g.sample(a, a * 7 + 1);
            assert!(v.is_finite());
            assert!(v.abs() < 10.0, "implausible normal deviate {v}");
        }
    }
}
