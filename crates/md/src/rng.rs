//! Counter-based deterministic Gaussian noise.
//!
//! Langevin dynamics needs one independent standard normal per particle,
//! per axis, per step. Drawing them from a single sequential RNG would make
//! trajectories depend on thread scheduling; instead each draw is a pure
//! function of `(seed, counter)` via SplitMix64 mixing + Box–Muller, so a
//! rayon-parallel integrator produces bit-identical trajectories to the
//! serial one. This is the same design philosophy as Random123/Philox
//! counter-based RNGs.
//!
//! The Box–Muller transform runs on the deterministic polynomial `ln` and
//! `cos` kernels from [`crate::detmath`], not libm. That buys two things
//! the batched ensemble engine depends on:
//!
//! - **Cross-platform bit-reproducibility**: trajectories no longer depend
//!   on the host libm's last-ulp behaviour.
//! - **Lane vectorization**: the per-replica draw decomposes into a
//!   counter hash shared by every replica ([`gauss_hash`]) and a
//!   per-replica tail ([`gauss_from`]) built from IEEE-exact branchless
//!   ops, so the batched integrator sweeps replica lanes through the same
//!   function the scalar path calls — bit-identical by construction, and
//!   8-wide under AVX-512.

use crate::detmath::{det_cos2pi, det_ln};
use spice_stats::rng::{splitmix64, SeedSequence};

/// Map 32 random bits to a uniform in the open interval (0, 1).
///
/// Half-ulp offset keeps 0 and 1 unreachable; the smallest value 2⁻³³
/// bounds the Box–Muller radius at √(−2·ln 2⁻³³) ≈ 6.77, comfortably
/// inside every finiteness guard in this crate.
#[inline(always)]
fn u32_to_open01(w: u32) -> f64 {
    (w as f64 + 0.5) * (1.0 / 4_294_967_296.0)
}

/// Mix the logical draw coordinates `(a, b)` into the counter word shared
/// by every replica of an ensemble. In the batched engine this is hoisted
/// out of the replica-lane sweep; the scalar path computes it per call.
#[inline(always)]
pub(crate) fn gauss_hash(a: u64, b: u64) -> u64 {
    splitmix64(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b)
}

/// The per-replica tail of a draw: one SplitMix64 round over
/// `seed ^ hash`, whose 64 output bits provide the two Box–Muller
/// uniforms. Branchless and IEEE-exact end to end (see
/// [`crate::detmath`]), so scalar and lane-swept evaluation agree
/// bit-for-bit.
#[inline(always)]
pub(crate) fn gauss_from(seed: u64, h: u64) -> f64 {
    let out = splitmix64(seed ^ h);
    let u1 = u32_to_open01((out >> 32) as u32);
    let u2 = u32_to_open01(out as u32);
    // max(0): the polynomial ln has ~1e-11 absolute slack, so -2·ln(u1)
    // can land a hair below zero when u1 is within an ulp of 1.
    (-2.0 * det_ln(u1)).max(0.0).sqrt() * det_cos2pi(u2)
}

/// A stateless stream of standard-normal deviates indexed by counters.
#[derive(Debug, Clone, Copy)]
pub struct GaussianStream {
    seed: u64,
}

impl GaussianStream {
    /// Stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        GaussianStream { seed }
    }

    /// Noise stream for ensemble member `realization`.
    ///
    /// This is THE `(seed sequence, realization)` reseed scheme: both the
    /// cloned per-replica path (`smd::run_ensemble_cloned`) and the
    /// batched SoA path (`smd::run_ensemble_batched`) derive member
    /// streams through [`realization_seed`], so the two engines see the
    /// same noise by construction. Changing the derivation here changes
    /// every ensemble trajectory in the workspace.
    pub fn for_realization(seeds: &SeedSequence, realization: u64) -> Self {
        GaussianStream::new(realization_seed(seeds, realization))
    }

    /// The root seed (used by the batched engine to reconstruct this
    /// stream lane-side).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Standard normal for logical coordinates `(a, b)` — typically
    /// `(particle, axis)` or `(step*3+axis, particle)`. Pure function of
    /// `(seed, a, b)`.
    #[inline]
    pub fn sample(&self, a: u64, b: u64) -> f64 {
        gauss_from(self.seed, gauss_hash(a, b))
    }

    /// Standard normal for a 3-index counter `(step, particle, axis)`.
    #[inline]
    pub fn sample3(&self, step: u64, particle: u64, axis: u64) -> f64 {
        self.sample(step.wrapping_mul(3).wrapping_add(axis), particle)
    }
}

/// The u64 simulation seed for ensemble member `realization` — the other
/// half of the reseed scheme behind [`GaussianStream::for_realization`].
/// Ensemble drivers pass this to their simulation factory so thermostat
/// streams, thermalization, and any factory-internal seeding all fork
/// per-member from one place.
#[inline]
pub fn realization_seed(seeds: &SeedSequence, realization: u64) -> u64 {
    seeds.stream(realization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_stats::RunningStats;

    #[test]
    fn deterministic() {
        let g = GaussianStream::new(7);
        assert_eq!(g.sample(1, 2), g.sample(1, 2));
        assert_ne!(g.sample(1, 2), g.sample(2, 1));
        assert_ne!(
            GaussianStream::new(7).sample(0, 0),
            GaussianStream::new(8).sample(0, 0)
        );
    }

    #[test]
    fn moments_are_standard_normal() {
        let g = GaussianStream::new(1234);
        let mut rs = RunningStats::new();
        for a in 0..200u64 {
            for b in 0..500u64 {
                rs.push(g.sample(a, b));
            }
        }
        assert!(rs.mean().abs() < 0.01, "mean {}", rs.mean());
        assert!((rs.variance() - 1.0).abs() < 0.02, "var {}", rs.variance());
        assert!(rs.skewness().abs() < 0.03, "skew {}", rs.skewness());
        assert!(rs.kurtosis().abs() < 0.08, "kurt {}", rs.kurtosis());
    }

    #[test]
    fn adjacent_counters_uncorrelated() {
        let g = GaussianStream::new(5);
        let n = 50_000u64;
        let mut sum = 0.0;
        for i in 0..n {
            sum += g.sample(i, 0) * g.sample(i + 1, 0);
        }
        let corr = sum / n as f64;
        assert!(corr.abs() < 0.02, "lag-1 correlation {corr}");
    }

    #[test]
    fn sample3_distinct_axes() {
        let g = GaussianStream::new(3);
        let x = g.sample3(10, 4, 0);
        let y = g.sample3(10, 4, 1);
        let z = g.sample3(10, 4, 2);
        assert!(x != y && y != z && x != z);
    }

    #[test]
    fn values_are_finite() {
        let g = GaussianStream::new(0);
        for a in 0..1000 {
            let v = g.sample(a, a * 7 + 1);
            assert!(v.is_finite());
            assert!(v.abs() < 10.0, "implausible normal deviate {v}");
        }
    }

    #[test]
    fn matches_libm_box_muller_statistically() {
        // The polynomial kernels approximate ln/cos to ~1e-9; each deviate
        // must sit within that error of the libm-evaluated transform on
        // the same uniforms.
        let g = GaussianStream::new(99);
        for a in 0..10_000u64 {
            let out = splitmix64(99u64 ^ gauss_hash(a, 3));
            let u1 = u32_to_open01((out >> 32) as u32);
            let u2 = u32_to_open01(out as u32);
            let reference = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            assert!(
                (g.sample(a, 3) - reference).abs() < 1e-6,
                "a={a}: {} vs {reference}",
                g.sample(a, 3)
            );
        }
    }

    #[test]
    fn realization_streams_are_independent() {
        // Satellite requirement: no cross-lane correlation between the
        // first 1k draws of any two member streams, and no two members
        // share a stream.
        let seeds = SeedSequence::new(20050512);
        let members: Vec<GaussianStream> = (0..8)
            .map(|i| GaussianStream::for_realization(&seeds, i))
            .collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (a, b) = (members[i], members[j]);
                assert_ne!(a.seed(), b.seed());
                let n = 1000u64;
                let mut dot = 0.0;
                let mut identical = 0u32;
                for k in 0..n {
                    let (x, y) = (a.sample(k, 0), b.sample(k, 0));
                    dot += x * y;
                    identical += (x == y) as u32;
                }
                let corr = dot / n as f64;
                assert!(corr.abs() < 0.11, "lanes {i},{j}: corr {corr}");
                assert!(identical < 3, "lanes {i},{j}: {identical} shared draws");
            }
        }
    }

    #[test]
    fn realization_seed_matches_seed_sequence_stream() {
        // The factory seed and the noise stream must stay one scheme.
        let seeds = SeedSequence::new(42);
        for i in 0..16 {
            assert_eq!(realization_seed(&seeds, i), seeds.stream(i));
            assert_eq!(
                GaussianStream::for_realization(&seeds, i).seed(),
                seeds.stream(i)
            );
        }
    }
}
