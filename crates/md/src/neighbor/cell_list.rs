//! O(N) cell-list neighbor search for open (non-periodic) systems.
//!
//! Space inside the instantaneous bounding box is divided into cubic cells
//! of edge ≥ cutoff; candidate pairs are drawn from each cell and its
//! forward half-shell of 13 neighbors, so every pair is produced exactly
//! once with `i < j`.

use super::PairList;
use crate::vec3::Vec3;

/// A rebuilt-per-call cell grid. Construction is cheap (a few Vec fills),
/// so the typical usage is [`CellList::build`] whenever the Verlet list
/// needs refreshing.
#[derive(Debug, Clone)]
pub struct CellList {
    origin: Vec3,
    cell: f64,
    dims: [usize; 3],
    /// Head-of-chain particle index per cell, -1 when empty.
    heads: Vec<i32>,
    /// Linked-list "next" pointer per particle, -1 at chain end.
    next: Vec<i32>,
}

impl CellList {
    /// Bin `positions` into cells of edge `cutoff` (minimum 1e-6).
    ///
    /// # Panics
    /// Panics if `cutoff <= 0` or positions are empty or non-finite.
    pub fn bin(positions: &[Vec3], cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "cell list cutoff must be positive");
        assert!(
            !positions.is_empty(),
            "cell list needs at least one particle"
        );
        let mut lo = positions[0];
        let mut hi = positions[0];
        for &p in positions {
            assert!(p.is_finite(), "non-finite position in cell list");
            lo = lo.min(p);
            hi = hi.max(p);
        }
        // Pad so upper-boundary particles land strictly inside the grid.
        let pad = 1e-9 * (1.0 + hi.norm() + lo.norm());
        let extent = hi - lo + Vec3::new(pad, pad, pad);
        let dims = [
            ((extent.x / cutoff).floor() as usize + 1).max(1),
            ((extent.y / cutoff).floor() as usize + 1).max(1),
            ((extent.z / cutoff).floor() as usize + 1).max(1),
        ];
        let ncells = dims[0] * dims[1] * dims[2];
        // A sane simulation never needs more cells than ~particles; an
        // enormous grid means coordinates have blown up — fail loudly
        // instead of attempting a multi-terabyte allocation.
        assert!(
            ncells <= 100_000_000,
            "cell grid of {ncells} cells (dims {dims:?}) — coordinates have likely blown up"
        );
        let mut heads = vec![-1i32; ncells];
        let mut next = vec![-1i32; positions.len()];
        let cl = CellList {
            origin: lo,
            cell: cutoff,
            dims,
            heads: Vec::new(),
            next: Vec::new(),
        };
        for (i, &p) in positions.iter().enumerate() {
            let c = cl.cell_index(p);
            next[i] = heads[c];
            heads[c] = i as i32;
        }
        CellList { heads, next, ..cl }
    }

    #[inline]
    fn cell_coords(&self, p: Vec3) -> [usize; 3] {
        let rel = p - self.origin;
        [
            ((rel.x / self.cell) as usize).min(self.dims[0] - 1),
            ((rel.y / self.cell) as usize).min(self.dims[1] - 1),
            ((rel.z / self.cell) as usize).min(self.dims[2] - 1),
        ]
    }

    #[inline]
    fn cell_index(&self, p: Vec3) -> usize {
        let [cx, cy, cz] = self.cell_coords(p);
        (cz * self.dims[1] + cy) * self.dims[0] + cx
    }

    /// Grid dimensions (cells per axis).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Collect all pairs within `cutoff` (must equal the binning cutoff or
    /// be smaller) into `out`, each pair exactly once with `i < j`.
    pub fn collect_pairs(&self, positions: &[Vec3], cutoff: f64, out: &mut PairList) {
        assert!(
            cutoff <= self.cell + 1e-12,
            "query cutoff {cutoff} exceeds cell edge {}",
            self.cell
        );
        let c2 = cutoff * cutoff;
        let (nx, ny, nz) = (
            self.dims[0] as isize,
            self.dims[1] as isize,
            self.dims[2] as isize,
        );
        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let c = ((cz * ny + cy) * nx + cx) as usize;
                    // Within-cell pairs.
                    let mut i = self.heads[c];
                    while i >= 0 {
                        let mut j = self.next[i as usize];
                        while j >= 0 {
                            Self::push_if_close(positions, i as u32, j as u32, c2, out);
                            j = self.next[j as usize];
                        }
                        i = self.next[i as usize];
                    }
                    // Forward half-shell of neighbor cells.
                    for &(dx, dy, dz) in FORWARD_NEIGHBORS {
                        let (ox, oy, oz) = (cx + dx, cy + dy, cz + dz);
                        if ox < 0 || ox >= nx || oy < 0 || oy >= ny || oz < 0 || oz >= nz {
                            continue;
                        }
                        let oc = ((oz * ny + oy) * nx + ox) as usize;
                        let mut i = self.heads[c];
                        while i >= 0 {
                            let mut j = self.heads[oc];
                            while j >= 0 {
                                Self::push_if_close(positions, i as u32, j as u32, c2, out);
                                j = self.next[j as usize];
                            }
                            i = self.next[i as usize];
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn push_if_close(positions: &[Vec3], a: u32, b: u32, c2: f64, out: &mut PairList) {
        if (positions[a as usize] - positions[b as usize]).norm_sq() <= c2 {
            out.push((a.min(b), a.max(b)));
        }
    }

    /// Convenience: bin and collect in one call.
    pub fn build(positions: &[Vec3], cutoff: f64) -> PairList {
        let mut out = Vec::new();
        Self::bin(positions, cutoff).collect_pairs(positions, cutoff, &mut out);
        out
    }
}

/// The 13 forward neighbor offsets of the half-shell enumeration.
const FORWARD_NEIGHBORS: &[(isize, isize, isize)] = &[
    (1, 0, 0),
    (-1, 1, 0),
    (0, 1, 0),
    (1, 1, 0),
    (-1, -1, 1),
    (0, -1, 1),
    (1, -1, 1),
    (-1, 0, 1),
    (0, 0, 1),
    (1, 0, 1),
    (-1, 1, 1),
    (0, 1, 1),
    (1, 1, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::{brute_force_pairs, sorted_pairs};
    use proptest::prelude::*;

    fn random_positions(n: usize, seed: u64, scale: f64) -> Vec<Vec3> {
        use spice_stats::rng::seed_stream;
        (0..n)
            .map(|i| {
                let u = |k: u64| {
                    (seed_stream(seed, i as u64 * 3 + k) >> 11) as f64 / (1u64 << 53) as f64
                };
                Vec3::new(u(0) * scale, u(1) * scale, u(2) * scale * 2.0)
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_dense() {
        let pos = random_positions(300, 1, 10.0);
        let cl = sorted_pairs(CellList::build(&pos, 2.5));
        let bf = sorted_pairs(brute_force_pairs(&pos, 2.5));
        assert_eq!(cl, bf);
    }

    #[test]
    fn matches_brute_force_sparse() {
        let pos = random_positions(100, 2, 100.0);
        let cl = sorted_pairs(CellList::build(&pos, 3.0));
        let bf = sorted_pairs(brute_force_pairs(&pos, 3.0));
        assert_eq!(cl, bf);
    }

    #[test]
    fn single_particle_no_pairs() {
        let pos = [Vec3::new(1.0, 2.0, 3.0)];
        assert!(CellList::build(&pos, 1.0).is_empty());
    }

    #[test]
    fn collinear_particles() {
        // Degenerate geometry: all on a line (1-cell-thick grid in y, z).
        let pos: Vec<Vec3> = (0..20)
            .map(|i| Vec3::new(i as f64 * 0.9, 0.0, 0.0))
            .collect();
        let cl = sorted_pairs(CellList::build(&pos, 1.0));
        let bf = sorted_pairs(brute_force_pairs(&pos, 1.0));
        assert_eq!(cl, bf);
        assert_eq!(cl.len(), 19);
    }

    #[test]
    fn coincident_particles() {
        let pos = [Vec3::zero(), Vec3::zero(), Vec3::zero()];
        let cl = CellList::build(&pos, 1.0);
        assert_eq!(cl.len(), 3, "all three coincident pairs found");
    }

    #[test]
    #[should_panic(expected = "cutoff must be positive")]
    fn zero_cutoff_rejected() {
        CellList::build(&[Vec3::zero()], 0.0);
    }

    #[test]
    fn smaller_query_cutoff_allowed() {
        let pos = random_positions(50, 3, 8.0);
        let binned = CellList::bin(&pos, 3.0);
        let mut out = Vec::new();
        binned.collect_pairs(&pos, 2.0, &mut out);
        assert_eq!(
            sorted_pairs(out),
            sorted_pairs(brute_force_pairs(&pos, 2.0))
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn always_matches_brute_force(seed in 0u64..1000, n in 2usize..120, cutoff in 0.5f64..4.0) {
            let pos = random_positions(n, seed, 12.0);
            let cl = sorted_pairs(CellList::build(&pos, cutoff));
            let bf = sorted_pairs(brute_force_pairs(&pos, cutoff));
            prop_assert_eq!(cl, bf);
        }
    }
}
