//! Neighbor search: O(N²) reference, O(N) cell lists, and Verlet lists
//! with skin-based rebuild detection.
//!
//! The engine runs open-boundary systems (the pore model confines
//! particles via external potentials rather than periodic images), so the
//! cell grid is fitted to the instantaneous bounding box.

pub mod cell_list;
pub mod verlet;

pub use cell_list::CellList;
pub use verlet::VerletList;

use crate::vec3::Vec3;

/// An unordered list of candidate interacting pairs `(i, j)` with `i < j`.
pub type PairList = Vec<(u32, u32)>;

/// O(N²) reference pair search — ground truth for tests and tiny systems.
pub fn brute_force_pairs(positions: &[Vec3], cutoff: f64) -> PairList {
    let c2 = cutoff * cutoff;
    let mut out = Vec::new();
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            if (positions[i] - positions[j]).norm_sq() <= c2 {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Canonicalize a pair list for comparison: sort lexicographically.
pub fn sorted_pairs(mut pairs: PairList) -> PairList {
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_finds_close_pairs_only() {
        let pos = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(5.0, 0.0, 0.0),
        ];
        let pairs = brute_force_pairs(&pos, 2.0);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn cutoff_is_inclusive() {
        let pos = [Vec3::zero(), Vec3::new(2.0, 0.0, 0.0)];
        assert_eq!(brute_force_pairs(&pos, 2.0).len(), 1);
        assert_eq!(brute_force_pairs(&pos, 1.999).len(), 0);
    }
}
