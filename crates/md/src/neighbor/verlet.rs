//! Verlet (pair) list with skin: pairs are gathered out to
//! `cutoff + skin` and reused across steps until any particle has moved
//! more than `skin / 2`, guaranteeing no interacting pair is ever missed.

use super::{CellList, PairList};
use crate::vec3::Vec3;

/// A cached neighbor list with automatic staleness detection.
#[derive(Debug, Clone)]
pub struct VerletList {
    cutoff: f64,
    skin: f64,
    pairs: PairList,
    ref_positions: Vec<Vec3>,
    rebuilds: u64,
    built: bool,
}

impl VerletList {
    /// Create an empty list for interactions within `cutoff`, cached out to
    /// `cutoff + skin`.
    ///
    /// # Panics
    /// Panics unless `cutoff > 0` and `skin >= 0`.
    pub fn new(cutoff: f64, skin: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(skin >= 0.0, "skin must be non-negative");
        VerletList {
            cutoff,
            skin,
            pairs: Vec::new(),
            ref_positions: Vec::new(),
            rebuilds: 0,
            built: false,
        }
    }

    /// Interaction cutoff (Å).
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Skin margin (Å) added to the cutoff when candidate pairs are
    /// collected; half of it bounds the displacement before a rebuild.
    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// True when the cached list can no longer be trusted: the particle
    /// count changed or some particle moved more than `skin/2` since the
    /// last rebuild.
    pub fn needs_rebuild(&self, positions: &[Vec3]) -> bool {
        if !self.built || self.ref_positions.len() != positions.len() {
            return true;
        }
        let limit = (self.skin * 0.5) * (self.skin * 0.5);
        self.ref_positions
            .iter()
            .zip(positions)
            .any(|(&a, &b)| (a - b).norm_sq() > limit)
    }

    /// Refresh the cached pairs if stale; returns true when a rebuild
    /// happened.
    pub fn update(&mut self, positions: &[Vec3]) -> bool {
        if !self.needs_rebuild(positions) {
            return false;
        }
        self.pairs.clear();
        if positions.len() > 1 {
            CellList::bin(positions, self.cutoff + self.skin).collect_pairs(
                positions,
                self.cutoff + self.skin,
                &mut self.pairs,
            );
        }
        self.ref_positions.clear();
        self.ref_positions.extend_from_slice(positions);
        self.rebuilds += 1;
        self.built = true;
        true
    }

    /// Cached candidate pairs (within `cutoff + skin` at last rebuild).
    /// Callers must still apply the true cutoff per pair.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of rebuilds performed (diagnostics).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::{brute_force_pairs, sorted_pairs};

    fn line(n: usize, spacing: f64) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new(i as f64 * spacing, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn first_update_always_rebuilds() {
        let mut vl = VerletList::new(1.5, 0.5);
        let pos = line(10, 1.0);
        assert!(vl.needs_rebuild(&pos));
        assert!(vl.update(&pos));
        assert_eq!(vl.rebuild_count(), 1);
    }

    #[test]
    fn no_rebuild_for_small_motion() {
        let mut vl = VerletList::new(1.5, 0.5);
        let mut pos = line(10, 1.0);
        vl.update(&pos);
        pos[3].y += 0.2; // < skin/2 = 0.25
        assert!(!vl.update(&pos));
        assert_eq!(vl.rebuild_count(), 1);
    }

    #[test]
    fn rebuild_after_large_motion() {
        let mut vl = VerletList::new(1.5, 0.5);
        let mut pos = line(10, 1.0);
        vl.update(&pos);
        pos[3].y += 0.3; // > skin/2
        assert!(vl.update(&pos));
        assert_eq!(vl.rebuild_count(), 2);
    }

    #[test]
    fn skin_guarantees_no_missed_pairs() {
        // Two particles just outside cutoff drift inside without triggering
        // a rebuild: the cached list (cutoff+skin) must already hold them.
        let cutoff = 1.0;
        let skin = 0.4;
        let mut vl = VerletList::new(cutoff, skin);
        let mut pos = vec![Vec3::zero(), Vec3::new(1.15, 0.0, 0.0)];
        vl.update(&pos);
        // Move each by 0.1 (< skin/2) toward each other: separation 0.95.
        pos[0].x += 0.1;
        pos[1].x -= 0.1;
        assert!(!vl.update(&pos), "motion below skin/2 must not rebuild");
        let within: Vec<_> = vl
            .pairs()
            .iter()
            .filter(|&&(i, j)| (pos[i as usize] - pos[j as usize]).norm() <= cutoff)
            .collect();
        assert_eq!(within.len(), 1, "pair now inside cutoff must be in cache");
    }

    #[test]
    fn particle_count_change_triggers_rebuild() {
        let mut vl = VerletList::new(1.0, 0.2);
        vl.update(&line(5, 0.9));
        assert!(vl.needs_rebuild(&line(6, 0.9)));
    }

    #[test]
    fn cached_pairs_superset_of_true_pairs() {
        let pos: Vec<Vec3> = (0..50)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.37).sin() * 5.0, (f * 0.73).cos() * 5.0, f * 0.11)
            })
            .collect();
        let mut vl = VerletList::new(2.0, 0.5);
        vl.update(&pos);
        let true_pairs = sorted_pairs(brute_force_pairs(&pos, 2.0));
        let cached = sorted_pairs(vl.pairs().to_vec());
        for p in &true_pairs {
            assert!(cached.binary_search(p).is_ok(), "missing pair {p:?}");
        }
    }

    #[test]
    fn empty_and_singleton_systems() {
        let mut vl = VerletList::new(1.0, 0.1);
        assert!(vl.update(&[]));
        assert!(vl.pairs().is_empty());
        assert!(vl.update(&[Vec3::zero()]));
        assert!(vl.pairs().is_empty());
    }
}
