//! Minimal 3-vector used throughout the engine.
//!
//! Plain `f64` components, `Copy`, no SIMD intrinsics — the compiler
//! auto-vectorizes the structure-of-arrays loops where it matters.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component double-precision vector (position, velocity, force).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

/// The zero vector.
pub const ZERO: Vec3 = Vec3 {
    x: 0.0,
    y: 0.0,
    z: 0.0,
};

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        ZERO
    }

    /// Unit vector along z (the pore axis in `spice-pore`).
    #[inline]
    pub const fn ez() -> Self {
        Vec3::new(0.0, 0.0, 1.0)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in this direction; zero vector maps to zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        // spice-lint: allow(N002) exact-zero norm guard: zero vector has no direction
        if n == 0.0 {
            ZERO
        } else {
            self / n
        }
    }

    /// Radial distance from the z-axis, √(x²+y²).
    #[inline]
    pub fn rho(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
        self.z *= s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
        self.z /= s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn dot_and_cross() {
        let ex = Vec3::new(1.0, 0.0, 0.0);
        let ey = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(ex.dot(ey), 0.0);
        assert_eq!(ex.cross(ey), Vec3::ez());
        assert_eq!(Vec3::ez().cross(ex), ey);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.rho(), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(Vec3::zero().normalized(), Vec3::zero());
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 0.0));
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_vec3(), b in arb_vec3()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn cross_is_antisymmetric(a in arb_vec3(), b in arb_vec3()) {
            let c = a.cross(b);
            let d = b.cross(a);
            prop_assert!((c + d).norm() < 1e-9 * (1.0 + c.norm()));
        }

        #[test]
        fn cross_orthogonal_to_operands(a in arb_vec3(), b in arb_vec3()) {
            let c = a.cross(b);
            let scale = 1.0 + a.norm() * b.norm();
            prop_assert!(c.dot(a).abs() / scale < 1e-9);
            prop_assert!(c.dot(b).abs() / scale < 1e-9);
        }

        #[test]
        fn cauchy_schwarz(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-9);
        }

        #[test]
        fn normalized_is_unit_or_zero(a in arb_vec3()) {
            let n = a.normalized().norm();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-12);
        }
    }
}
