//! Checkpoint & clone support (§III of the paper).
//!
//! "Checkpoint and cloning of simulations features provided by the
//! RealityGrid infrastructure can also be used for verification and
//! validation tests without perturbing the original simulation and for
//! exploring a particular configuration in greater detail."
//!
//! A [`Snapshot`] captures the full dynamical state plus the step counter;
//! because the Langevin noise is keyed on `(seed, step)`, restoring a
//! snapshot into an identically-configured simulation reproduces the
//! original trajectory *exactly*, while restoring with a different seed
//! clones the simulation onto a divergent realization.

use crate::sim::Simulation;
use crate::system::System;
use crate::MdError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Schema version stamped into every snapshot this build writes and
/// required of every snapshot it reads. Bump on any change to the
/// serialized [`Snapshot`] shape.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Version-probe deserialization target: reads *only* the schema field,
/// tolerating its absence, so version checking happens before (and
/// independently of) full structural deserialization.
#[derive(Deserialize)]
struct SchemaProbe {
    schema: Option<u32>,
}

/// A serializable simulation snapshot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Snapshot {
    /// Snapshot schema version (see [`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Step counter at capture time.
    pub step: u64,
    /// Simulation time (ps) at capture time.
    pub time_ps: f64,
    /// Full particle state.
    pub system: System,
    /// Free-form label (which phase / realization produced this).
    pub label: String,
}

impl Snapshot {
    /// Capture the state of a running simulation.
    pub fn capture(sim: &Simulation, label: impl Into<String>) -> Self {
        Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            step: sim.step_count(),
            time_ps: sim.time_ps(),
            system: sim.system().clone(),
            label: label.into(),
        }
    }

    /// Restore this snapshot into a simulation (the simulation must have
    /// been built with a compatible force field / particle count).
    pub fn restore(&self, sim: &mut Simulation) -> Result<(), MdError> {
        if sim.system().len() != self.system.len() {
            return Err(MdError::Checkpoint(format!(
                "snapshot has {} particles, simulation has {}",
                self.system.len(),
                sim.system().len()
            )));
        }
        *sim.system_mut() = self.system.clone();
        sim.set_step(self.step);
        sim.refresh_forces();
        Ok(())
    }

    /// Serialize to JSON into any writer.
    pub fn write_json<W: Write>(&self, w: W) -> Result<(), MdError> {
        serde_json::to_writer(w, self).map_err(Into::into)
    }

    /// Deserialize from JSON out of any reader.
    ///
    /// # Errors
    /// [`MdError::CheckpointVersion`] when the snapshot was written
    /// under a different schema version (or predates versioning —
    /// reported as version 0); [`MdError::Checkpoint`] for structural
    /// corruption.
    pub fn read_json<R: Read>(mut r: R) -> Result<Snapshot, MdError> {
        let mut raw = String::new();
        r.read_to_string(&mut raw)?;
        // Two-stage read: probe the schema version first so a version
        // mismatch is reported as exactly that, not as whatever field
        // the newer/older shape happens to trip over first.
        let probe: SchemaProbe = serde_json::from_str(&raw)?;
        match probe.schema {
            Some(SNAPSHOT_SCHEMA_VERSION) => {}
            other => {
                return Err(MdError::CheckpointVersion {
                    found: other.unwrap_or(0),
                    supported: SNAPSHOT_SCHEMA_VERSION,
                })
            }
        }
        serde_json::from_str(&raw).map_err(Into::into)
    }

    /// Save to a file atomically: the JSON lands in a temp sibling and
    /// is renamed into place, so a crash mid-save never leaves a torn
    /// snapshot under the real name.
    pub fn save(&self, path: &std::path::Path) -> Result<(), MdError> {
        let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
            MdError::Checkpoint(format!("snapshot path {} has no file name", path.display()))
        })?;
        let tmp = path.with_file_name(format!("{file_name}.tmp"));
        {
            // spice-lint: allow(W001) this is the atomic-writer protocol itself: temp sibling + rename
            let f = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::new(f);
            self.write_json(&mut w)?;
            w.flush()?;
        }
        std::fs::rename(&tmp, path).map_err(Into::into)
    }

    /// Load from a file.
    pub fn load(path: &std::path::Path) -> Result<Snapshot, MdError> {
        let f = std::fs::File::open(path)?;
        Self::read_json(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{ForceField, Restraint};
    use crate::integrate::LangevinBaoab;
    use crate::topology::Topology;
    use crate::vec3::Vec3;

    fn make_sim(seed: u64) -> Simulation {
        let mut sys = System::new();
        for i in 0..4 {
            sys.add_particle(Vec3::new(i as f64, 0.0, 0.0), 5.0, 0.0, 0);
        }
        let mut ff = ForceField::new(Topology::new());
        for i in 0..4 {
            ff = ff.with_restraint(Restraint::harmonic(i, Vec3::new(i as f64, 0.0, 0.0), 1.0));
        }
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 2.0, seed)),
            0.01,
        )
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut sim = make_sim(1);
        sim.run(50, &mut []).unwrap();
        let snap = Snapshot::capture(&sim, "test");
        let mut buf = Vec::new();
        snap.write_json(&mut buf).unwrap();
        let back = Snapshot::read_json(&buf[..]).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn restore_reproduces_trajectory_exactly() {
        // Original: run 50 steps, snapshot, run 50 more → final state A.
        let mut orig = make_sim(42);
        orig.run(50, &mut []).unwrap();
        let snap = Snapshot::capture(&orig, "mid");
        orig.run(50, &mut []).unwrap();
        let final_a = orig.system().positions().to_vec();

        // Restored replica with the same seed continues identically.
        let mut replica = make_sim(42);
        snap.restore(&mut replica).unwrap();
        assert_eq!(replica.step_count(), 50);
        replica.run(50, &mut []).unwrap();
        assert_eq!(replica.system().positions(), final_a.as_slice());
    }

    #[test]
    fn clone_with_new_seed_diverges() {
        let mut orig = make_sim(42);
        orig.run(50, &mut []).unwrap();
        let snap = Snapshot::capture(&orig, "branch-point");
        orig.run(50, &mut []).unwrap();

        // Clone: same state, different noise stream → divergent exploration
        // "without perturbing the original simulation".
        let mut clone = make_sim(43);
        snap.restore(&mut clone).unwrap();
        clone.run(50, &mut []).unwrap();
        assert_ne!(clone.system().positions(), orig.system().positions());
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let sim = make_sim(1);
        let snap = Snapshot::capture(&sim, "x");
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let mut other = Simulation::new(
            sys,
            ForceField::new(Topology::new()),
            Box::new(LangevinBaoab::new(300.0, 1.0, 0)),
            0.01,
        );
        assert!(snap.restore(&mut other).is_err());
    }

    #[test]
    fn schema_version_mismatch_is_a_distinct_error() {
        let sim = make_sim(9);
        let mut snap = Snapshot::capture(&sim, "versioned");
        assert_eq!(snap.schema, SNAPSHOT_SCHEMA_VERSION);
        // A snapshot from a future build.
        snap.schema = SNAPSHOT_SCHEMA_VERSION + 7;
        let mut buf = Vec::new();
        snap.write_json(&mut buf).unwrap();
        match Snapshot::read_json(&buf[..]) {
            Err(MdError::CheckpointVersion { found, supported }) => {
                assert_eq!(found, SNAPSHOT_SCHEMA_VERSION + 7);
                assert_eq!(supported, SNAPSHOT_SCHEMA_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        // A pre-versioning snapshot (no schema field at all) reports
        // version 0 — the probe runs before structural deserialization,
        // so even this skeletal document gets the right error.
        match Snapshot::read_json(&b"{\"step\": 120}"[..]) {
            Err(MdError::CheckpointVersion { found: 0, .. }) => {}
            other => panic!("expected version-0 error, got {other:?}"),
        }
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spice_ckpt_atomic_{}.json", std::process::id()));
        let tmp = dir.join(format!("spice_ckpt_atomic_{}.json.tmp", std::process::id()));
        let sim = make_sim(2);
        let snap = Snapshot::capture(&sim, "atomic");
        snap.save(&path).unwrap();
        assert!(!tmp.exists(), "temp sibling must be renamed away");
        assert_eq!(Snapshot::load(&path).unwrap(), snap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spice_ckpt_test_{}.json", std::process::id()));
        let sim = make_sim(5);
        let snap = Snapshot::capture(&sim, "file");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(snap, back);
        let _ = std::fs::remove_file(&path);
    }
}
