//! Checkpoint & clone support (§III of the paper).
//!
//! "Checkpoint and cloning of simulations features provided by the
//! RealityGrid infrastructure can also be used for verification and
//! validation tests without perturbing the original simulation and for
//! exploring a particular configuration in greater detail."
//!
//! A [`Snapshot`] captures the full dynamical state plus the step counter;
//! because the Langevin noise is keyed on `(seed, step)`, restoring a
//! snapshot into an identically-configured simulation reproduces the
//! original trajectory *exactly*, while restoring with a different seed
//! clones the simulation onto a divergent realization.

use crate::sim::Simulation;
use crate::system::System;
use crate::MdError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// A serializable simulation snapshot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Snapshot {
    /// Step counter at capture time.
    pub step: u64,
    /// Simulation time (ps) at capture time.
    pub time_ps: f64,
    /// Full particle state.
    pub system: System,
    /// Free-form label (which phase / realization produced this).
    pub label: String,
}

impl Snapshot {
    /// Capture the state of a running simulation.
    pub fn capture(sim: &Simulation, label: impl Into<String>) -> Self {
        Snapshot {
            step: sim.step_count(),
            time_ps: sim.time_ps(),
            system: sim.system().clone(),
            label: label.into(),
        }
    }

    /// Restore this snapshot into a simulation (the simulation must have
    /// been built with a compatible force field / particle count).
    pub fn restore(&self, sim: &mut Simulation) -> Result<(), MdError> {
        if sim.system().len() != self.system.len() {
            return Err(MdError::Checkpoint(format!(
                "snapshot has {} particles, simulation has {}",
                self.system.len(),
                sim.system().len()
            )));
        }
        *sim.system_mut() = self.system.clone();
        sim.set_step(self.step);
        sim.refresh_forces();
        Ok(())
    }

    /// Serialize to JSON into any writer.
    pub fn write_json<W: Write>(&self, w: W) -> Result<(), MdError> {
        serde_json::to_writer(w, self).map_err(Into::into)
    }

    /// Deserialize from JSON out of any reader.
    pub fn read_json<R: Read>(r: R) -> Result<Snapshot, MdError> {
        serde_json::from_reader(r).map_err(Into::into)
    }

    /// Save to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), MdError> {
        let f = std::fs::File::create(path)?;
        self.write_json(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load(path: &std::path::Path) -> Result<Snapshot, MdError> {
        let f = std::fs::File::open(path)?;
        Self::read_json(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{ForceField, Restraint};
    use crate::integrate::LangevinBaoab;
    use crate::topology::Topology;
    use crate::vec3::Vec3;

    fn make_sim(seed: u64) -> Simulation {
        let mut sys = System::new();
        for i in 0..4 {
            sys.add_particle(Vec3::new(i as f64, 0.0, 0.0), 5.0, 0.0, 0);
        }
        let mut ff = ForceField::new(Topology::new());
        for i in 0..4 {
            ff = ff.with_restraint(Restraint::harmonic(i, Vec3::new(i as f64, 0.0, 0.0), 1.0));
        }
        Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(300.0, 2.0, seed)),
            0.01,
        )
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut sim = make_sim(1);
        sim.run(50, &mut []).unwrap();
        let snap = Snapshot::capture(&sim, "test");
        let mut buf = Vec::new();
        snap.write_json(&mut buf).unwrap();
        let back = Snapshot::read_json(&buf[..]).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn restore_reproduces_trajectory_exactly() {
        // Original: run 50 steps, snapshot, run 50 more → final state A.
        let mut orig = make_sim(42);
        orig.run(50, &mut []).unwrap();
        let snap = Snapshot::capture(&orig, "mid");
        orig.run(50, &mut []).unwrap();
        let final_a = orig.system().positions().to_vec();

        // Restored replica with the same seed continues identically.
        let mut replica = make_sim(42);
        snap.restore(&mut replica).unwrap();
        assert_eq!(replica.step_count(), 50);
        replica.run(50, &mut []).unwrap();
        assert_eq!(replica.system().positions(), final_a.as_slice());
    }

    #[test]
    fn clone_with_new_seed_diverges() {
        let mut orig = make_sim(42);
        orig.run(50, &mut []).unwrap();
        let snap = Snapshot::capture(&orig, "branch-point");
        orig.run(50, &mut []).unwrap();

        // Clone: same state, different noise stream → divergent exploration
        // "without perturbing the original simulation".
        let mut clone = make_sim(43);
        snap.restore(&mut clone).unwrap();
        clone.run(50, &mut []).unwrap();
        assert_ne!(clone.system().positions(), orig.system().positions());
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let sim = make_sim(1);
        let snap = Snapshot::capture(&sim, "x");
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let mut other = Simulation::new(
            sys,
            ForceField::new(Topology::new()),
            Box::new(LangevinBaoab::new(300.0, 1.0, 0)),
            0.01,
        );
        assert!(snap.restore(&mut other).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("spice_ckpt_test_{}.json", std::process::id()));
        let sim = make_sim(5);
        let snap = Snapshot::capture(&sim, "file");
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(snap, back);
        let _ = std::fs::remove_file(&path);
    }
}
