//! Runtime simulation sanitizer (the `audit` cargo feature).
//!
//! Invariant checks installed at layer boundaries and compiled out of
//! normal builds entirely: without `--features audit` this module does
//! not exist and the hot path pays nothing. With it, every completed
//! integrator step asserts that the particle state is finite, so a NaN
//! is caught at the step that produced it instead of thousands of steps
//! later when an observable goes bad.
//!
//! Panic messages follow the format `spice-audit[layer.invariant]: ...`
//! so a failing CI run names the violated invariant directly.

use crate::system::System;
use crate::vec3::Vec3;

fn finite(v: &Vec3) -> bool {
    v.x.is_finite() && v.y.is_finite() && v.z.is_finite()
}

/// Assert every position, velocity and force is finite. Invoked by
/// [`crate::sim::Simulation::step_once`] after each completed step; also
/// callable directly (injection tests drive it with corrupted systems).
pub fn check_finite_state(system: &System, step: u64) {
    for (i, p) in system.positions().iter().enumerate() {
        if !finite(p) {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[md.finite_state]: particle {i} position \
                 ({}, {}, {}) non-finite after step {step}",
                p.x, p.y, p.z
            );
        }
    }
    for (i, v) in system.velocities().iter().enumerate() {
        if !finite(v) {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[md.finite_state]: particle {i} velocity \
                 ({}, {}, {}) non-finite after step {step}",
                v.x, v.y, v.z
            );
        }
    }
    for (i, f) in system.forces().iter().enumerate() {
        if !finite(f) {
            // spice-lint: allow(P001) the sanitizer's contract is to panic on a violated invariant
            panic!(
                "spice-audit[md.finite_state]: particle {i} force \
                 ({}, {}, {}) non-finite after step {step}",
                f.x, f.y, f.z
            );
        }
    }
}
