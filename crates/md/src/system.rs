//! Structure-of-arrays particle state.
//!
//! Positions, velocities and forces live in separate contiguous vectors so
//! the force and integration loops stream through memory linearly and
//! auto-vectorize (the Rust perf-book idiom for hot numeric kernels).

use crate::units;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Numeric species identifier (indexes into a model-defined species table).
pub type SpeciesId = u32;

/// The dynamical state of an N-particle system.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct System {
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    forces: Vec<Vec3>,
    masses: Vec<f64>,
    inv_masses: Vec<f64>,
    charges: Vec<f64>,
    species: Vec<SpeciesId>,
}

impl System {
    /// Empty system.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Empty system with reserved capacity for `n` particles.
    pub fn with_capacity(n: usize) -> Self {
        System {
            positions: Vec::with_capacity(n),
            velocities: Vec::with_capacity(n),
            forces: Vec::with_capacity(n),
            masses: Vec::with_capacity(n),
            inv_masses: Vec::with_capacity(n),
            charges: Vec::with_capacity(n),
            species: Vec::with_capacity(n),
        }
    }

    /// Append a particle; returns its index.
    ///
    /// # Panics
    /// Panics on non-positive mass.
    pub fn add_particle(&mut self, pos: Vec3, mass: f64, charge: f64, species: SpeciesId) -> usize {
        assert!(mass > 0.0, "particle mass must be positive");
        self.positions.push(pos);
        self.velocities.push(Vec3::zero());
        self.forces.push(Vec3::zero());
        self.masses.push(mass);
        self.inv_masses.push(1.0 / mass);
        self.charges.push(charge);
        self.species.push(species);
        self.positions.len() - 1
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the system holds no particles.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Particle positions (Å).
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Mutable particle positions.
    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    /// Particle velocities (Å/ps).
    pub fn velocities(&self) -> &[Vec3] {
        &self.velocities
    }

    /// Mutable particle velocities.
    pub fn velocities_mut(&mut self) -> &mut [Vec3] {
        &mut self.velocities
    }

    /// Accumulated forces (kcal mol⁻¹ Å⁻¹).
    pub fn forces(&self) -> &[Vec3] {
        &self.forces
    }

    /// Mutable force accumulators.
    pub fn forces_mut(&mut self) -> &mut [Vec3] {
        &mut self.forces
    }

    /// Split borrows needed by integrators: (positions, velocities, forces,
    /// inverse masses).
    pub fn split_mut(&mut self) -> (&mut [Vec3], &mut [Vec3], &mut [Vec3], &[f64]) {
        (
            &mut self.positions,
            &mut self.velocities,
            &mut self.forces,
            &self.inv_masses,
        )
    }

    /// Split borrow for force evaluation: positions, charges and species
    /// immutably alongside the mutable force accumulators.
    pub fn force_eval_view(&mut self) -> (&[Vec3], &[f64], &[SpeciesId], &mut [Vec3]) {
        (
            &self.positions,
            &self.charges,
            &self.species,
            &mut self.forces,
        )
    }

    /// Particle masses (amu).
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Precomputed inverse masses.
    pub fn inv_masses(&self) -> &[f64] {
        &self.inv_masses
    }

    /// Particle charges (units of e).
    pub fn charges(&self) -> &[f64] {
        &self.charges
    }

    /// Species identifiers.
    pub fn species(&self) -> &[SpeciesId] {
        &self.species
    }

    /// Zero all force accumulators (start of a force evaluation).
    pub fn zero_forces(&mut self) {
        for f in &mut self.forces {
            *f = Vec3::zero();
        }
    }

    /// Kinetic energy, kcal/mol.
    pub fn kinetic_energy(&self) -> f64 {
        units::KE
            * 0.5
            * self
                .velocities
                .iter()
                .zip(&self.masses)
                .map(|(v, &m)| m * v.norm_sq())
                .sum::<f64>()
    }

    /// Instantaneous temperature (K) from the equipartition theorem with
    /// 3N degrees of freedom. Returns 0 for an empty system.
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let dof = 3.0 * self.len() as f64;
        2.0 * self.kinetic_energy() / (dof * units::KB)
    }

    /// Center of mass of the whole system.
    pub fn center_of_mass(&self) -> Vec3 {
        self.center_of_mass_of(0..self.len())
    }

    /// Center of mass of a subset of particle indices.
    pub fn center_of_mass_of<I: IntoIterator<Item = usize>>(&self, idx: I) -> Vec3 {
        let mut num = Vec3::zero();
        let mut den = 0.0;
        for i in idx {
            num += self.positions[i] * self.masses[i];
            den += self.masses[i];
        }
        // spice-lint: allow(N002) exact-zero total mass sentinel: empty group
        if den == 0.0 {
            Vec3::zero()
        } else {
            num / den
        }
    }

    /// Total mass (amu).
    pub fn total_mass(&self) -> f64 {
        self.masses.iter().sum()
    }

    /// Net momentum (amu·Å/ps).
    pub fn momentum(&self) -> Vec3 {
        self.velocities
            .iter()
            .zip(&self.masses)
            .map(|(&v, &m)| v * m)
            .sum()
    }

    /// Remove net center-of-mass drift velocity.
    pub fn remove_com_velocity(&mut self) {
        let m = self.total_mass();
        // spice-lint: allow(N002) exact-zero total mass sentinel: empty group
        if m == 0.0 {
            return;
        }
        let vcom = self.momentum() / m;
        for v in &mut self.velocities {
            *v -= vcom;
        }
    }

    /// Draw Maxwell–Boltzmann velocities at temperature `t` (K) using the
    /// supplied per-particle Gaussian sampler, then remove COM drift.
    ///
    /// `gauss(i, axis)` must return an independent standard normal for each
    /// `(particle, axis)` pair.
    pub fn thermalize_with<F: FnMut(usize, usize) -> f64>(&mut self, t: f64, mut gauss: F) {
        for i in 0..self.len() {
            let s = units::thermal_velocity(self.masses[i], t);
            self.velocities[i] = Vec3::new(s * gauss(i, 0), s * gauss(i, 1), s * gauss(i, 2));
        }
        self.remove_com_velocity();
    }

    /// True when every coordinate and velocity is finite.
    pub fn is_finite(&self) -> bool {
        self.positions.iter().all(|p| p.is_finite())
            && self.velocities.iter().all(|v| v.is_finite())
    }

    /// Axis-aligned bounding box of current positions; `None` when empty.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.positions[0];
        let mut hi = self.positions[0];
        for &p in &self.positions[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some((lo, hi))
    }
}

impl Default for System {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::GaussianStream;

    fn two_particle_system() -> System {
        let mut s = System::new();
        s.add_particle(Vec3::new(0.0, 0.0, 0.0), 2.0, 1.0, 0);
        s.add_particle(Vec3::new(1.0, 0.0, 0.0), 6.0, -1.0, 1);
        s
    }

    #[test]
    fn add_and_query() {
        let s = two_particle_system();
        assert_eq!(s.len(), 2);
        assert_eq!(s.masses(), &[2.0, 6.0]);
        assert_eq!(s.charges(), &[1.0, -1.0]);
        assert_eq!(s.species(), &[0, 1]);
        assert_eq!(s.inv_masses()[1], 1.0 / 6.0);
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn zero_mass_rejected() {
        let mut s = System::new();
        s.add_particle(Vec3::zero(), 0.0, 0.0, 0);
    }

    #[test]
    fn com_weights_by_mass() {
        let s = two_particle_system();
        // COM = (2*0 + 6*1)/8 = 0.75 along x.
        let com = s.center_of_mass();
        assert!((com.x - 0.75).abs() < 1e-12);
    }

    #[test]
    fn kinetic_energy_and_temperature() {
        let mut s = two_particle_system();
        s.velocities_mut()[0] = Vec3::new(1.0, 0.0, 0.0);
        // KE = 0.5 * 2 * 1 * units::KE
        let ke = s.kinetic_energy();
        assert!((ke - units::KE).abs() < 1e-15);
        // T = 2 KE / (6 kB)
        let t = s.temperature();
        assert!((t - 2.0 * ke / (6.0 * units::KB)).abs() < 1e-10);
    }

    #[test]
    fn remove_com_velocity_zeroes_momentum() {
        let mut s = two_particle_system();
        s.velocities_mut()[0] = Vec3::new(3.0, -1.0, 0.5);
        s.velocities_mut()[1] = Vec3::new(0.2, 0.8, -0.1);
        s.remove_com_velocity();
        assert!(s.momentum().norm() < 1e-12);
    }

    #[test]
    fn thermalize_hits_target_temperature() {
        let mut s = System::new();
        for i in 0..2000 {
            s.add_particle(Vec3::new(i as f64, 0.0, 0.0), 50.0, 0.0, 0);
        }
        let g = GaussianStream::new(99);
        s.thermalize_with(300.0, |i, a| g.sample(i as u64, a as u64));
        let t = s.temperature();
        assert!(
            (t - 300.0).abs() < 15.0,
            "thermalized temperature {t} should be near 300 K"
        );
        assert!(s.momentum().norm() < 1e-9);
    }

    #[test]
    fn bounding_box() {
        let s = two_particle_system();
        let (lo, hi) = s.bounding_box().unwrap();
        assert_eq!(lo, Vec3::zero());
        assert_eq!(hi, Vec3::new(1.0, 0.0, 0.0));
        assert!(System::new().bounding_box().is_none());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut s = two_particle_system();
        assert!(s.is_finite());
        s.positions_mut()[0].x = f64::NAN;
        assert!(!s.is_finite());
    }
}
