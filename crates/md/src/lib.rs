//! # spice-md
//!
//! A from-scratch classical molecular-dynamics engine — the substrate the
//! SPICE paper ran via NAMD on 128–256 processors per simulation.
//!
//! The engine is deliberately general (it knows nothing about pores or
//! DNA; those live in `spice-pore`) and provides:
//!
//! * [`vec3`] / [`units`] — 3-vector algebra and the Å/ps/amu/kcal·mol⁻¹
//!   unit system with pN conversions used throughout the paper.
//! * [`system`] — structure-of-arrays particle state (positions,
//!   velocities, forces, masses, charges, species).
//! * [`topology`] — bonds, angles, dihedrals, non-bonded exclusions and
//!   named atom groups (the "SMD atoms" of the paper are a group).
//! * [`forces`] — bonded terms (harmonic, FENE, angle, dihedral),
//!   non-bonded Lennard-Jones/WCA, screened Debye–Hückel electrostatics,
//!   position restraints and a pluggable external-potential trait (the
//!   pore confinement enters through it).
//! * [`neighbor`] — O(N) cell lists and Verlet lists with skin-based
//!   rebuild detection, validated against the O(N²) reference.
//! * [`integrate`] — velocity-Verlet (NVE), Langevin BAOAB (NVT) and
//!   overdamped Brownian integrators.
//! * [`rng`] — counter-based deterministic Gaussian noise so Langevin
//!   trajectories are bit-reproducible regardless of thread scheduling.
//! * [`sim`] — the simulation driver with step hooks: the attach point the
//!   RealityGrid-style steering library (`spice-steering`) uses, exactly as
//!   the paper interfaces NAMD to the ReG steering library "through well
//!   defined user-level APIs" without refactoring the MD code.
//! * [`checkpoint`] — serde snapshots enabling the paper's checkpoint &
//!   clone workflow (§III).
//! * [`minimize`] — steepest-descent preparation.
//! * [`trajectory`] — XYZ frame streams for visualization.
//!
//! Forces are evaluated in parallel with rayon using per-thread
//! accumulation buffers (no atomics on the hot path), per the HPC guide.

#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod batch;
pub mod checkpoint;
pub mod detmath;
pub mod error;
pub mod forces;
pub mod integrate;
pub mod minimize;
pub mod neighbor;
pub mod observables;
pub mod rng;
pub mod sim;
pub mod system;
pub mod thermostat;
pub mod topology;
pub mod trajectory;
pub mod units;
pub mod vec3;

pub use batch::{BatchSim, LaneForces, LaneThermostat};
pub use error::MdError;
pub use forces::ForceField;
pub use sim::{BiasForce, HookAction, HookContext, Simulation, StepHook};
pub use system::System;
pub use topology::Topology;
pub use vec3::Vec3;
