//! Engine error type.

use std::fmt;

/// Errors surfaced by the MD engine.
#[derive(Debug)]
pub enum MdError {
    /// A particle index referenced a non-existent particle.
    BadIndex {
        /// Offending index.
        index: usize,
        /// Number of particles in the system.
        len: usize,
    },
    /// A named atom group was not found in the topology.
    UnknownGroup(String),
    /// The integration blew up (non-finite coordinate or energy).
    NumericalBlowup {
        /// Step at which the blow-up was detected.
        step: u64,
        /// Human-readable description of what went non-finite.
        what: String,
    },
    /// Checkpoint (de)serialization failure.
    Checkpoint(String),
    /// A checkpoint written under a different snapshot schema version —
    /// distinct from generic corruption so campaign tooling can tell
    /// "upgrade your snapshot" apart from "your disk ate it".
    CheckpointVersion {
        /// Schema version recorded in the file (0 = none recorded, i.e.
        /// a pre-versioning snapshot).
        found: u32,
        /// Schema version this build reads and writes.
        supported: u32,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for MdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdError::BadIndex { index, len } => {
                write!(f, "particle index {index} out of bounds (system has {len})")
            }
            MdError::UnknownGroup(name) => write!(f, "unknown atom group '{name}'"),
            MdError::NumericalBlowup { step, what } => {
                write!(f, "numerical blow-up at step {step}: {what}")
            }
            MdError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            MdError::CheckpointVersion { found, supported } => write!(
                f,
                "checkpoint schema version {found} (this build supports {supported})"
            ),
            MdError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for MdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MdError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MdError {
    fn from(e: std::io::Error) -> Self {
        MdError::Io(e)
    }
}

impl From<serde_json::Error> for MdError {
    fn from(e: serde_json::Error) -> Self {
        MdError::Checkpoint(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MdError::BadIndex { index: 7, len: 3 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
        let g = MdError::UnknownGroup("smd".into());
        assert!(g.to_string().contains("smd"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: MdError = io.into();
        assert!(matches!(e, MdError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
