//! Steepest-descent energy minimization with adaptive step size — the
//! standard "remove bad contacts before dynamics" preparation stage.

use crate::forces::ForceField;
use crate::system::System;

/// Result of a minimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimizeResult {
    /// Iterations performed.
    pub iterations: u32,
    /// Potential energy at entry (kcal/mol).
    pub initial_energy: f64,
    /// Potential energy at exit (kcal/mol).
    pub final_energy: f64,
    /// Largest force component magnitude at exit (kcal mol⁻¹ Å⁻¹).
    pub max_force: f64,
    /// True when `max_force` fell below the tolerance.
    pub converged: bool,
}

/// Steepest descent: move along the force with a trust-radius step,
/// growing the step on success and shrinking on energy increase.
///
/// Velocities are untouched. Returns after `max_iterations` or when the
/// largest force component drops below `force_tolerance`.
pub fn steepest_descent(
    system: &mut System,
    force_field: &mut ForceField,
    max_iterations: u32,
    force_tolerance: f64,
    max_step: f64,
) -> MinimizeResult {
    assert!(force_tolerance > 0.0 && max_step > 0.0);
    let mut step = max_step * 0.1;
    let mut energy = force_field.evaluate(system).total();
    let initial_energy = energy;
    let mut iterations = 0;

    for _ in 0..max_iterations {
        let fmax = system
            .forces()
            .iter()
            .map(|f| f.x.abs().max(f.y.abs()).max(f.z.abs()))
            .fold(0.0f64, f64::max);
        if fmax < force_tolerance {
            return MinimizeResult {
                iterations,
                initial_energy,
                final_energy: energy,
                max_force: fmax,
                converged: true,
            };
        }
        // Trial move: displace along normalized forces, capped per atom.
        let scale = step / fmax;
        let backup: Vec<crate::Vec3> = system.positions().to_vec();
        let forces: Vec<crate::Vec3> = system.forces().to_vec();
        for (p, f) in system.positions_mut().iter_mut().zip(&forces) {
            *p += *f * scale;
        }
        let new_energy = force_field.evaluate(system).total();
        if new_energy < energy {
            energy = new_energy;
            step = (step * 1.2).min(max_step);
        } else {
            // Reject and shrink.
            system.positions_mut().copy_from_slice(&backup);
            force_field.evaluate(system);
            step *= 0.5;
            if step < 1e-10 {
                break;
            }
        }
        iterations += 1;
    }
    let fmax = system
        .forces()
        .iter()
        .map(|f| f.x.abs().max(f.y.abs()).max(f.z.abs()))
        .fold(0.0f64, f64::max);
    MinimizeResult {
        iterations,
        initial_energy,
        final_energy: energy,
        max_force: fmax,
        converged: fmax < force_tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{LjParams, NonBonded, Restraint};
    use crate::topology::Topology;
    use crate::vec3::Vec3;

    #[test]
    fn relaxes_into_harmonic_minimum() {
        let mut sys = System::new();
        sys.add_particle(Vec3::new(5.0, -3.0, 2.0), 1.0, 0.0, 0);
        let mut ff = ForceField::new(Topology::new()).with_restraint(Restraint::harmonic(
            0,
            Vec3::zero(),
            2.0,
        ));
        let r = steepest_descent(&mut sys, &mut ff, 500, 1e-4, 0.5);
        assert!(r.converged, "did not converge: {r:?}");
        assert!(sys.positions()[0].norm() < 1e-3);
        assert!(r.final_energy < 1e-4);
        assert!(r.final_energy < r.initial_energy);
    }

    #[test]
    fn removes_bad_contact() {
        // Two WCA beads placed almost on top of each other — the classic
        // bad contact that would blow up dynamics.
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        sys.add_particle(Vec3::new(0.4, 0.1, 0.0), 1.0, 0.0, 0);
        let mut ff = ForceField::new(Topology::new()).with_nonbonded(NonBonded::new(
            LjParams::wca(1.0, 1.0),
            2.0,
            0.3,
        ));
        let before = ff.evaluate(&mut sys).total();
        assert!(before > 100.0, "overlap must be catastrophic: {before}");
        let r = steepest_descent(&mut sys, &mut ff, 2000, 1e-3, 0.2);
        assert!(
            r.final_energy < 1e-2,
            "contact not resolved: E = {}",
            r.final_energy
        );
        let sep = (sys.positions()[1] - sys.positions()[0]).norm();
        assert!(sep > 1.0, "beads must separate beyond σ: {sep}");
    }

    #[test]
    fn converged_system_exits_immediately() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        let mut ff = ForceField::new(Topology::new()).with_restraint(Restraint::harmonic(
            0,
            Vec3::zero(),
            1.0,
        ));
        let r = steepest_descent(&mut sys, &mut ff, 100, 1e-6, 0.5);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn velocities_untouched() {
        let mut sys = System::new();
        sys.add_particle(Vec3::new(1.0, 0.0, 0.0), 1.0, 0.0, 0);
        sys.velocities_mut()[0] = Vec3::new(0.5, 0.5, 0.5);
        let mut ff = ForceField::new(Topology::new()).with_restraint(Restraint::harmonic(
            0,
            Vec3::zero(),
            1.0,
        ));
        steepest_descent(&mut sys, &mut ff, 50, 1e-4, 0.5);
        assert_eq!(sys.velocities()[0], Vec3::new(0.5, 0.5, 0.5));
    }
}
