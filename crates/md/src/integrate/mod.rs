//! Time integrators.
//!
//! * [`VelocityVerlet`] — symplectic NVE; used for energy-conservation
//!   validation of the force field.
//! * [`LangevinBaoab`] — the production NVT integrator (Leimkuhler &
//!   Matthews BAOAB splitting). The Langevin thermostat doubles as the
//!   implicit solvent: friction γ models water drag on the CG beads.
//! * [`Brownian`] — overdamped limit, used for cheap priming runs.
//!
//! Integrators receive a force-evaluation callback so bias forces (SMD
//! spring, IMD user forces) are recomputed at the correct sub-step.

pub mod brownian;
pub mod langevin;
pub mod velocity_verlet;

pub use brownian::Brownian;
pub use langevin::LangevinBaoab;
pub use velocity_verlet::VelocityVerlet;

use crate::system::System;

/// A force evaluation callback: recompute `system.forces()` for the
/// current positions (force field + any active biases).
pub type ForceEval<'a> = dyn FnMut(&mut System) + 'a;

/// A time-stepping scheme.
pub trait Integrator {
    /// Advance the system by one step of `dt` picoseconds. `step_index`
    /// is the global step counter (stochastic integrators key their noise
    /// on it, which makes checkpoint/restore exact). `eval_forces` must
    /// leave `system.forces()` consistent with `system.positions()`. On
    /// entry, forces are assumed consistent with the current positions
    /// (the driver guarantees this).
    fn step(
        &mut self,
        system: &mut System,
        dt: f64,
        step_index: u64,
        eval_forces: &mut ForceEval<'_>,
    );

    /// Scheme name for diagnostics.
    fn name(&self) -> &str;

    /// `(temperature K, friction ps⁻¹, noise-stream seed)` when this
    /// integrator is a BAOAB Langevin thermostat, else `None`.
    ///
    /// The batched ensemble engine (`crate::batch`) replicates the BAOAB
    /// update across replica lanes itself, so it needs the thermostat
    /// parameters rather than the [`step`](Self::step) entry point.
    /// Drivers fall back to the per-replica cloned path when this returns
    /// `None`.
    fn langevin_params(&self) -> Option<(f64, f64, u64)> {
        None
    }
}
