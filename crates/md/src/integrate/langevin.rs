//! Langevin dynamics via the BAOAB splitting (Leimkuhler & Matthews).
//!
//! BAOAB has superb configurational sampling accuracy at large time steps,
//! which is exactly what the SMD ensemble needs: the PMF depends on
//! configurational averages. Friction γ doubles as the implicit-solvent
//! drag of the coarse-grained model.
//!
//! Noise comes from a counter-based [`GaussianStream`] keyed on
//! `(step, particle, axis)`, so trajectories are reproducible bit-for-bit
//! under any parallel schedule and across runs.

use super::{ForceEval, Integrator};
use crate::rng::GaussianStream;
use crate::system::System;
use crate::units;

/// BAOAB Langevin integrator (NVT).
#[derive(Debug, Clone)]
pub struct LangevinBaoab {
    /// Target temperature (K).
    temperature: f64,
    /// Friction coefficient γ (ps⁻¹).
    gamma: f64,
    noise: GaussianStream,
}

impl LangevinBaoab {
    /// Create an integrator at `temperature` K with friction `gamma` ps⁻¹,
    /// seeded deterministically.
    ///
    /// # Panics
    /// Panics unless both arguments are positive.
    pub fn new(temperature: f64, gamma: f64, seed: u64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        assert!(gamma > 0.0, "friction must be positive");
        LangevinBaoab {
            temperature,
            gamma,
            noise: GaussianStream::new(seed),
        }
    }

    /// Target temperature (K).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Change the target temperature (steering can adjust it live).
    pub fn set_temperature(&mut self, t: f64) {
        assert!(t > 0.0);
        self.temperature = t;
    }

    /// Friction coefficient (ps⁻¹).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl Integrator for LangevinBaoab {
    fn step(
        &mut self,
        system: &mut System,
        dt: f64,
        step_index: u64,
        eval_forces: &mut ForceEval<'_>,
    ) {
        let half_kick = 0.5 * dt * units::ACCEL;
        let c1 = (-self.gamma * dt).exp();
        let c2_base = (1.0 - c1 * c1).sqrt();
        let kt_acc = units::KB * self.temperature * units::ACCEL;
        let step = step_index;
        let noise = self.noise;

        {
            let (pos, vel, frc, inv_m) = system.split_mut();
            for i in 0..pos.len() {
                // B: half kick.
                vel[i] += frc[i] * (half_kick * inv_m[i]);
                // A: half drift.
                pos[i] += vel[i] * (0.5 * dt);
                // O: Ornstein-Uhlenbeck exact update.
                let sigma = c2_base * (kt_acc * inv_m[i]).sqrt();
                vel[i].x = c1 * vel[i].x + sigma * noise.sample3(step, i as u64, 0);
                vel[i].y = c1 * vel[i].y + sigma * noise.sample3(step, i as u64, 1);
                vel[i].z = c1 * vel[i].z + sigma * noise.sample3(step, i as u64, 2);
                // A: half drift.
                pos[i] += vel[i] * (0.5 * dt);
            }
        }
        // Force evaluation at the new positions.
        eval_forces(system);
        // B: final half kick.
        let (_, vel, frc, inv_m) = system.split_mut();
        for i in 0..vel.len() {
            vel[i] += frc[i] * (half_kick * inv_m[i]);
        }
    }

    fn name(&self) -> &str {
        "langevin-baoab"
    }

    fn langevin_params(&self) -> Option<(f64, f64, u64)> {
        Some((self.temperature, self.gamma, self.noise.seed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{ForceField, Restraint};
    use crate::topology::Topology;
    use crate::vec3::Vec3;
    use spice_stats::RunningStats;

    /// Independent particles in harmonic wells: exactly solvable NVT
    /// reference. U = k x² per axis ⇒ Var(x) = kT/(2k).
    fn well_system(n: usize, k: f64) -> (System, ForceField) {
        let mut sys = System::new();
        let mut ff = ForceField::new(Topology::new());
        for i in 0..n {
            sys.add_particle(Vec3::zero(), 20.0, 0.0, 0);
            ff = ff.with_restraint(Restraint::harmonic(i, Vec3::zero(), k));
        }
        (sys, ff)
    }

    #[test]
    fn samples_boltzmann_position_variance() {
        let k = 2.0;
        let (mut sys, mut ff) = well_system(100, k);
        ff.evaluate(&mut sys);
        let mut li = LangevinBaoab::new(300.0, 5.0, 17);
        let dt = 0.01;
        let mut stats = RunningStats::new();
        for step in 0..6000u64 {
            let mut eval = |s: &mut System| {
                ff.evaluate(s);
            };
            li.step(&mut sys, dt, step, &mut eval);
            if step > 1000 && step % 5 == 0 {
                for p in sys.positions() {
                    stats.push(p.x);
                    stats.push(p.y);
                    stats.push(p.z);
                }
            }
        }
        let expected = units::KT_300 / (2.0 * k);
        let measured = stats.variance();
        assert!(
            (measured - expected).abs() < 0.1 * expected,
            "position variance {measured} vs Boltzmann {expected}"
        );
    }

    #[test]
    fn equilibrates_to_target_temperature() {
        let (mut sys, mut ff) = well_system(200, 1.0);
        ff.evaluate(&mut sys);
        let mut li = LangevinBaoab::new(300.0, 2.0, 4);
        let mut tstats = RunningStats::new();
        for step in 0..4000u64 {
            let mut eval = |s: &mut System| {
                ff.evaluate(s);
            };
            li.step(&mut sys, 0.01, step, &mut eval);
            if step > 800 {
                tstats.push(sys.temperature());
            }
        }
        let t = tstats.mean();
        assert!((t - 300.0).abs() < 10.0, "temperature {t} should be ~300 K");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let (mut sys, mut ff) = well_system(5, 1.0);
            ff.evaluate(&mut sys);
            let mut li = LangevinBaoab::new(300.0, 1.0, seed);
            for i in 0..200u64 {
                let mut eval = |s: &mut System| {
                    ff.evaluate(s);
                };
                li.step(&mut sys, 0.01, i, &mut eval);
            }
            sys.positions().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn zero_temperature_limit_damps_motion() {
        // Low T, high friction: particle relaxes into the well minimum.
        let (mut sys, mut ff) = well_system(1, 5.0);
        sys.positions_mut()[0] = Vec3::new(3.0, 0.0, 0.0);
        ff.evaluate(&mut sys);
        let mut li = LangevinBaoab::new(1e-6, 50.0, 2);
        for i in 0..5000u64 {
            let mut eval = |s: &mut System| {
                ff.evaluate(s);
            };
            li.step(&mut sys, 0.005, i, &mut eval);
        }
        assert!(
            sys.positions()[0].norm() < 0.05,
            "should relax to origin: {:?}",
            sys.positions()[0]
        );
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn rejects_bad_temperature() {
        LangevinBaoab::new(0.0, 1.0, 0);
    }

    #[test]
    fn noise_keyed_on_step_index() {
        // Re-running the SAME step index twice gives identical kicks;
        // different indices give different kicks.
        let (sys0, mut ff) = well_system(1, 1.0);
        let mut run_step = |idx: u64| {
            let mut sys = sys0.clone();
            ff_eval(&mut ff, &mut sys);
            let mut li = LangevinBaoab::new(300.0, 1.0, 0);
            let mut eval = |s: &mut System| {
                ff.evaluate(s);
            };
            li.step(&mut sys, 0.01, idx, &mut eval);
            sys.positions()[0]
        };
        fn ff_eval(ff: &mut ForceField, s: &mut System) {
            ff.evaluate(s);
        }
        let a = run_step(5);
        let b = run_step(5);
        let c = run_step(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
