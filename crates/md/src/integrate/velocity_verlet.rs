//! Symplectic velocity-Verlet (NVE).

use super::{ForceEval, Integrator};
use crate::system::System;
use crate::units;

/// Velocity-Verlet: half-kick, drift, force re-evaluation, half-kick.
#[derive(Debug, Default, Clone, Copy)]
pub struct VelocityVerlet;

impl Integrator for VelocityVerlet {
    fn step(
        &mut self,
        system: &mut System,
        dt: f64,
        _step_index: u64,
        eval_forces: &mut ForceEval<'_>,
    ) {
        let half = 0.5 * dt * units::ACCEL;
        {
            let (pos, vel, frc, inv_m) = system.split_mut();
            for i in 0..pos.len() {
                vel[i] += frc[i] * (half * inv_m[i]);
                pos[i] += vel[i] * dt;
            }
        }
        eval_forces(system);
        let (_, vel, frc, inv_m) = system.split_mut();
        for i in 0..vel.len() {
            vel[i] += frc[i] * (half * inv_m[i]);
        }
    }

    fn name(&self) -> &str {
        "velocity-verlet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::ForceField;
    use crate::topology::Topology;
    use crate::vec3::Vec3;

    /// Harmonic dimer test bed: two bonded particles.
    fn dimer() -> (System, ForceField) {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 10.0, 0.0, 0);
        sys.add_particle(Vec3::new(1.3, 0.0, 0.0), 10.0, 0.0, 0);
        let mut topo = Topology::new();
        topo.add_harmonic_bond(0, 1, 1.0, 50.0);
        (sys, ForceField::new(topo))
    }

    #[test]
    fn energy_conserved_on_harmonic_dimer() {
        let (mut sys, mut ff) = dimer();
        let mut pe = ff.evaluate(&mut sys).total();
        let e0 = sys.kinetic_energy() + pe;
        let mut vv = VelocityVerlet;
        let dt = 0.0002;
        for i in 0..20_000u64 {
            let mut eval = |s: &mut System| {
                pe = ff.evaluate(s).total();
            };
            vv.step(&mut sys, dt, i, &mut eval);
        }
        let e1 = sys.kinetic_energy() + pe;
        assert!(
            (e1 - e0).abs() < 1e-3 * (1.0 + e0.abs()),
            "energy drifted: {e0} -> {e1}"
        );
    }

    #[test]
    fn oscillation_period_matches_analytic() {
        // Reduced mass μ = 5 amu, U = k (r-r0)^2 ⇒ ω = sqrt(2k·ACCEL/μ).
        let (mut sys, mut ff) = dimer();
        let mut eval = |s: &mut System| {
            ff.evaluate(s);
        };
        eval(&mut sys);
        let omega = (2.0 * 50.0 * units::ACCEL / 5.0).sqrt();
        let period = 2.0 * std::f64::consts::PI / omega;
        let dt = period / 2000.0;
        let mut vv = VelocityVerlet;
        // Released from stretched position; find first return to max extension.
        let mut crossings = 0;
        let mut prev_sep = 1.3;
        let mut steps_at_second_crossing = 0;
        for step in 1..10_000 {
            vv.step(&mut sys, dt, step as u64, &mut eval);
            let sep = (sys.positions()[1] - sys.positions()[0]).norm();
            // count minima crossings via derivative sign change
            if sep > prev_sep && crossings % 2 == 0 && step > 2 {
                crossings += 1;
            } else if sep < prev_sep && crossings % 2 == 1 {
                crossings += 1;
                if crossings == 2 {
                    steps_at_second_crossing = step;
                    break;
                }
            }
            prev_sep = sep;
        }
        assert!(steps_at_second_crossing > 0, "no full oscillation observed");
        let measured = steps_at_second_crossing as f64 * dt;
        assert!(
            (measured - period).abs() < 0.05 * period,
            "period {measured} vs analytic {period}"
        );
    }

    #[test]
    fn time_reversibility() {
        let (mut sys, mut ff) = dimer();
        sys.velocities_mut()[0] = Vec3::new(0.3, -0.2, 0.1);
        let start = sys.clone();
        let mut eval = |s: &mut System| {
            ff.evaluate(s);
        };
        eval(&mut sys);
        let mut vv = VelocityVerlet;
        for i in 0..500u64 {
            vv.step(&mut sys, 0.002, i, &mut eval);
        }
        // Reverse velocities and integrate back.
        for v in sys.velocities_mut() {
            *v = -*v;
        }
        eval(&mut sys);
        for i in 0..500u64 {
            vv.step(&mut sys, 0.002, 500 + i, &mut eval);
        }
        for (a, b) in sys.positions().iter().zip(start.positions()) {
            assert!(
                (*a - *b).norm() < 1e-8,
                "not time reversible: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn free_particle_moves_linearly() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        sys.velocities_mut()[0] = Vec3::new(2.0, 0.0, 0.0);
        let mut vv = VelocityVerlet;
        let mut eval = |_: &mut System| {};
        for i in 0..100u64 {
            vv.step(&mut sys, 0.01, i, &mut eval);
        }
        assert!((sys.positions()[0].x - 2.0).abs() < 1e-12);
    }
}
