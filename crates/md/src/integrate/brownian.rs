//! Overdamped (Brownian) dynamics — the high-friction limit of Langevin.
//!
//! `dx = (F/(mγ))·ACCEL·dt + √(2 D dt)·ξ`, with diffusion constant
//! `D = kT·ACCEL/(m γ)` in Å²/ps. Inertia is discarded; velocities are
//! left untouched. Used for cheap priming/pre-processing runs (§II's
//! "pre-processing simulations" phase) where only configurational
//! relaxation matters.

use super::{ForceEval, Integrator};
use crate::rng::GaussianStream;
use crate::system::System;
use crate::units;

/// Euler–Maruyama Brownian integrator (overdamped NVT).
#[derive(Debug, Clone)]
pub struct Brownian {
    temperature: f64,
    gamma: f64,
    noise: GaussianStream,
}

impl Brownian {
    /// Create at `temperature` K with friction `gamma` ps⁻¹.
    ///
    /// # Panics
    /// Panics unless both arguments are positive.
    pub fn new(temperature: f64, gamma: f64, seed: u64) -> Self {
        assert!(
            temperature > 0.0 && gamma > 0.0,
            "temperature and friction must be positive"
        );
        Brownian {
            temperature,
            gamma,
            noise: GaussianStream::new(seed),
        }
    }

    /// Diffusion constant (Å²/ps) for a particle of mass `m` (amu).
    pub fn diffusion(&self, m: f64) -> f64 {
        units::KB * self.temperature * units::ACCEL / (m * self.gamma)
    }
}

impl Integrator for Brownian {
    fn step(
        &mut self,
        system: &mut System,
        dt: f64,
        step_index: u64,
        eval_forces: &mut ForceEval<'_>,
    ) {
        let step = step_index;
        let noise = self.noise;
        let kt_acc = units::KB * self.temperature * units::ACCEL;
        {
            let (pos, _vel, frc, inv_m) = system.split_mut();
            for i in 0..pos.len() {
                let mobility = inv_m[i] / self.gamma; // 1/(mγ)
                let drift = frc[i] * (mobility * units::ACCEL * dt);
                let sigma = (2.0 * kt_acc * inv_m[i] / self.gamma * dt).sqrt();
                pos[i] += drift
                    + crate::vec3::Vec3::new(
                        sigma * noise.sample3(step, i as u64, 0),
                        sigma * noise.sample3(step, i as u64, 1),
                        sigma * noise.sample3(step, i as u64, 2),
                    );
            }
        }
        eval_forces(system);
    }

    fn name(&self) -> &str {
        "brownian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{ForceField, Restraint};
    use crate::topology::Topology;
    use crate::vec3::Vec3;
    use spice_stats::RunningStats;

    #[test]
    fn free_diffusion_msd_matches_einstein() {
        // MSD(t) = 6 D t for a free Brownian particle.
        let mut sys = System::new();
        let n = 500;
        for _ in 0..n {
            sys.add_particle(Vec3::zero(), 10.0, 0.0, 0);
        }
        let mut br = Brownian::new(300.0, 10.0, 5);
        let d = br.diffusion(10.0);
        let dt = 0.01;
        let nsteps = 400;
        let mut eval = |_: &mut System| {};
        for i in 0..nsteps {
            br.step(&mut sys, dt, i as u64, &mut eval);
        }
        let t = nsteps as f64 * dt;
        let msd: f64 = sys.positions().iter().map(|p| p.norm_sq()).sum::<f64>() / n as f64;
        let expected = 6.0 * d * t;
        assert!(
            (msd - expected).abs() < 0.15 * expected,
            "MSD {msd} vs 6Dt {expected}"
        );
    }

    #[test]
    fn harmonic_well_boltzmann_variance() {
        let k = 3.0;
        let mut sys = System::new();
        let mut ff = ForceField::new(Topology::new());
        for i in 0..50 {
            sys.add_particle(Vec3::zero(), 5.0, 0.0, 0);
            ff = ff.with_restraint(Restraint::harmonic(i, Vec3::zero(), k));
        }
        ff.evaluate(&mut sys);
        let mut br = Brownian::new(300.0, 20.0, 7);
        let mut stats = RunningStats::new();
        // dt must satisfy  (2k·ACCEL/(mγ)) dt ≪ 1 for Euler-Maruyama accuracy.
        let dt = 0.002;
        for step in 0..30_000u64 {
            let mut eval = |s: &mut System| {
                ff.evaluate(s);
            };
            br.step(&mut sys, dt, step, &mut eval);
            if step > 5_000 && step % 10 == 0 {
                for p in sys.positions() {
                    stats.push(p.x);
                }
            }
        }
        let expected = units::KT_300 / (2.0 * k);
        let measured = stats.variance();
        assert!(
            (measured - expected).abs() < 0.15 * expected,
            "variance {measured} vs Boltzmann {expected}"
        );
    }

    #[test]
    fn velocities_untouched() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        sys.velocities_mut()[0] = Vec3::new(1.0, 2.0, 3.0);
        let mut br = Brownian::new(300.0, 1.0, 0);
        let mut eval = |_: &mut System| {};
        br.step(&mut sys, 0.01, 0, &mut eval);
        assert_eq!(sys.velocities()[0], Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sys = System::new();
            sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
            let mut br = Brownian::new(300.0, 1.0, seed);
            let mut eval = |_: &mut System| {};
            for i in 0..50u64 {
                br.step(&mut sys, 0.01, i, &mut eval);
            }
            sys.positions()[0]
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
