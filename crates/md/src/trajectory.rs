//! Trajectory output in the XYZ text format — what the paper's
//! visualization engines consumed (frame streams), in the simplest
//! portable dialect (readable by VMD, OVITO, ASE…).

use crate::system::System;
use std::io::Write;

/// Streaming XYZ trajectory writer over any `Write` sink.
pub struct XyzWriter<W: Write> {
    sink: W,
    /// Species id → element label; unknown species render as "X".
    species_names: Vec<String>,
    frames: u64,
}

impl<W: Write> XyzWriter<W> {
    /// Writer with species labels (index = species id).
    pub fn new(sink: W, species_names: Vec<String>) -> Self {
        XyzWriter {
            sink,
            species_names,
            frames: 0,
        }
    }

    /// Append one frame with a comment line.
    pub fn write_frame(&mut self, system: &System, comment: &str) -> std::io::Result<()> {
        writeln!(self.sink, "{}", system.len())?;
        // XYZ comment lines must be single-line.
        writeln!(self.sink, "{}", comment.replace('\n', " "))?;
        for i in 0..system.len() {
            let name = self
                .species_names
                .get(system.species()[i] as usize)
                .map(String::as_str)
                .unwrap_or("X");
            let p = system.positions()[i];
            writeln!(self.sink, "{name} {:.4} {:.4} {:.4}", p.x, p.y, p.z)?;
        }
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Finish writing and recover the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Parse the frame count of an XYZ stream (validation / round-trip use).
pub fn count_xyz_frames(text: &str) -> usize {
    let mut lines = text.lines();
    let mut frames = 0;
    while let Some(n_line) = lines.next() {
        let Ok(n) = n_line.trim().parse::<usize>() else {
            break;
        };
        if lines.next().is_none() {
            break; // missing comment line
        }
        for _ in 0..n {
            if lines.next().is_none() {
                return frames; // truncated frame
            }
        }
        frames += 1;
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    fn sys() -> System {
        let mut s = System::new();
        s.add_particle(Vec3::new(1.0, 2.0, 3.0), 1.0, 0.0, 0);
        s.add_particle(Vec3::new(-1.0, 0.0, 0.5), 1.0, -1.0, 1);
        s
    }

    #[test]
    fn writes_valid_xyz() {
        let mut w = XyzWriter::new(Vec::new(), vec!["C".into(), "P".into()]);
        w.write_frame(&sys(), "frame 0").unwrap();
        w.write_frame(&sys(), "frame 1").unwrap();
        assert_eq!(w.frames(), 2);
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert!(text.starts_with("2\nframe 0\nC 1.0000 2.0000 3.0000\nP "));
        assert_eq!(count_xyz_frames(&text), 2);
    }

    #[test]
    fn unknown_species_renders_x() {
        let mut s = System::new();
        s.add_particle(Vec3::zero(), 1.0, 0.0, 9);
        let mut w = XyzWriter::new(Vec::new(), vec!["C".into()]);
        w.write_frame(&s, "c").unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert!(text.contains("X 0.0000"));
    }

    #[test]
    fn multiline_comment_flattened() {
        let mut w = XyzWriter::new(Vec::new(), vec![]);
        w.write_frame(&sys(), "a\nb").unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(count_xyz_frames(&text), 1);
        assert!(text.contains("a b"));
    }

    #[test]
    fn frame_counter_rejects_garbage() {
        assert_eq!(count_xyz_frames("not xyz"), 0);
        assert_eq!(count_xyz_frames("3\ncomment\nC 0 0 0\n"), 0, "truncated");
    }
}
