//! Non-bonded pair interactions: Lennard-Jones / WCA excluded volume plus
//! optional Debye–Hückel screened electrostatics, evaluated over a cached
//! Verlet list and parallelized with rayon for large systems.
//!
//! The coarse-grained ssDNA model uses WCA (purely repulsive LJ, cut at
//! 2^(1/6) σ) for excluded volume and Debye–Hückel for backbone charges in
//! implicit 1 M KCl — the electrolyte used in hemolysin translocation
//! experiments the paper builds on.
//!
//! # Tiered pair list
//!
//! The hot path does not re-ask per pair per step whether a pair is
//! excluded, whether electrostatics is enabled, or whether either charge
//! is zero. Those predicates only change when the Verlet list rebuilds
//! (or the charge/exclusion data changes), so at rebuild time the cached
//! pairs are compiled into two tiers, each sorted by `(i, j)` for
//! cache-friendly position access:
//!
//! - **LJ tier** — pairs needing only excluded-volume LJ (electrostatics
//!   disabled, or at least one charge is exactly zero);
//! - **LJ+DH tier** — pairs needing LJ and Debye–Hückel, with the pair
//!   prefactor `C·qᵢ·qⱼ/ε_r` precomputed per pair.
//!
//! Excluded pairs are dropped at compile time and never revisited. The
//! per-pair arithmetic is bitwise-identical to the classic per-pair-checked
//! loop (retained as [`NonBonded::compute_reference`]); only the summation
//! order differs, so energies/forces agree to FP-reassociation accuracy
//! and serial evaluation is bitwise-deterministic across runs.

use crate::neighbor::VerletList;
use crate::observables::KernelCounters;
use crate::topology::Topology;
use crate::vec3::Vec3;
use rayon::prelude::*;
use spice_telemetry::{Counter, Telemetry};

/// Lennard-Jones parameters (single species-independent set; the CG model
/// uses one bead size, matching the pore builder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjParams {
    /// Well depth ε (kcal/mol).
    pub epsilon: f64,
    /// Diameter σ (Å).
    pub sigma: f64,
    /// Interaction cutoff (Å). WCA uses 2^(1/6)σ.
    pub cutoff: f64,
    /// Shift the potential so U(cutoff) = 0 (removes the energy step).
    pub shifted: bool,
    /// Precomputed unshifted energy at the cutoff, `U_raw(cutoff²)` —
    /// subtracted per pair when `shifted` instead of being recomputed on
    /// every evaluation. Kept private so it cannot drift out of sync with
    /// the other parameters; use the constructors.
    shift_energy: f64,
}

impl LjParams {
    /// General constructor: computes the cutoff-shift constant once.
    pub fn new(sigma: f64, epsilon: f64, cutoff: f64, shifted: bool) -> Self {
        let mut p = LjParams {
            epsilon,
            sigma,
            cutoff,
            shifted,
            shift_energy: 0.0,
        };
        p.shift_energy = p.raw_energy(cutoff * cutoff);
        p
    }

    /// Full attractive LJ with the conventional 2.5σ cutoff, shifted.
    pub fn lj(sigma: f64, epsilon: f64) -> Self {
        Self::new(sigma, epsilon, 2.5 * sigma, true)
    }

    /// Purely repulsive WCA: cutoff at the LJ minimum 2^(1/6)σ, shifted so
    /// the potential is continuous and ≥ 0.
    pub fn wca(sigma: f64, epsilon: f64) -> Self {
        Self::new(sigma, epsilon, 2.0f64.powf(1.0 / 6.0) * sigma, true)
    }

    /// The precomputed `U_raw(cutoff²)` shift constant.
    pub fn shift_energy(&self) -> f64 {
        self.shift_energy
    }

    /// Unshifted pair energy at squared distance `r2` (no cutoff check).
    #[inline]
    pub(crate) fn raw_energy(&self, r2: f64) -> f64 {
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        4.0 * self.epsilon * (s6 * s6 - s6)
    }

    /// Energy (with shift applied if configured) and the scalar
    /// `f/r` factor such that `force_on_j = (r_j - r_i) * (f/r)`.
    #[inline]
    pub fn energy_force(&self, r2: f64) -> (f64, f64) {
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        let mut e = 4.0 * self.epsilon * (s6 * s6 - s6);
        if self.shifted {
            e -= self.shift_energy;
        }
        // dU/dr = -24 ε (2 s12 - s6) / r ⇒ f/r = 24 ε (2 s12 - s6) / r²
        let f_over_r = 24.0 * self.epsilon * (2.0 * s6 * s6 - s6) / r2;
        (e, f_over_r)
    }

    /// The pre-optimization evaluation: recomputes the cutoff shift on
    /// every call, exactly as the kernel historically did. Numerically
    /// identical to [`energy_force`](Self::energy_force) (the constant is
    /// the same bits); kept as the faithful cost model for the baseline
    /// side of kernel benchmarks.
    #[inline]
    pub fn energy_force_legacy(&self, r2: f64) -> (f64, f64) {
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        let mut e = 4.0 * self.epsilon * (s6 * s6 - s6);
        if self.shifted {
            e -= self.raw_energy(self.cutoff * self.cutoff);
        }
        let f_over_r = 24.0 * self.epsilon * (2.0 * s6 * s6 - s6) / r2;
        (e, f_over_r)
    }
}

/// Debye–Hückel screened Coulomb: `U = C q₁q₂ exp(-r/λ) / (ε_r r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebyeHuckel {
    /// Debye screening length λ (Å); ≈3 Å at 1 M KCl, ≈10 Å at 0.1 M.
    pub lambda: f64,
    /// Relative dielectric constant (≈80 for water).
    pub epsilon_r: f64,
}

/// Coulomb constant in kcal·mol⁻¹·Å·e⁻²: `e²/(4πε₀) = 332.06`.
pub const COULOMB_KCAL: f64 = 332.063_71;

impl DebyeHuckel {
    /// The pair prefactor `C·qᵢ·qⱼ/ε_r`, in the same operation order the
    /// per-pair path historically used (bitwise-stable).
    #[inline]
    pub fn prefactor(&self, qi: f64, qj: f64) -> f64 {
        COULOMB_KCAL * qi * qj / self.epsilon_r
    }

    /// Energy and `f/r` factor for charges `qi`, `qj` at squared
    /// separation `r2`.
    #[inline]
    pub fn energy_force(&self, qi: f64, qj: f64, r2: f64) -> (f64, f64) {
        self.energy_force_pref(self.prefactor(qi, qj), r2)
    }

    /// Same as [`energy_force`](Self::energy_force) with the charge
    /// prefactor already computed (tiered hot path).
    #[inline]
    pub fn energy_force_pref(&self, pref: f64, r2: f64) -> (f64, f64) {
        let r = r2.sqrt();
        // det_exp, not libm exp: bit-reproducible across platforms and
        // auto-vectorizable when this inlines into a replica-lane sweep.
        let screen = crate::detmath::det_exp(-r / self.lambda);
        let e = pref * screen / r;
        // dU/dr = -pref screen (1/r² + 1/(λ r)) ⇒ f/r = pref·screen·(1/r³ + 1/(λ r²))
        let f_over_r = pref * screen * (1.0 / (r2 * r) + 1.0 / (self.lambda * r2));
        (e, f_over_r)
    }
}

/// The compiled, tiered form of the Verlet pair cache. Rebuilt whenever
/// the underlying list rebuilds or the charge/exclusion inputs change.
#[derive(Debug, Default)]
struct TierList {
    /// Pairs needing only LJ, sorted by `(i, j)`.
    lj_pairs: Vec<(u32, u32)>,
    /// Pairs needing LJ + Debye–Hückel, sorted by `(i, j)`.
    ljdh_pairs: Vec<(u32, u32)>,
    /// Per-pair DH prefactor, parallel to `ljdh_pairs`.
    ljdh_pref: Vec<f64>,
    /// Fixed-size chunk descriptors `(is_dh_tier, start, end)` for the
    /// parallel path, spanning both tiers.
    chunks: Vec<(bool, usize, usize)>,
    /// Inputs the compilation depends on, for staleness detection.
    charges_sig: Vec<f64>,
    exclusion_sig: usize,
    valid: bool,
}

/// Pairs per parallel work chunk.
const CHUNK: usize = 8192;

impl TierList {
    fn stale(&self, rebuilt: bool, topology: &Topology, charges: &[f64]) -> bool {
        rebuilt
            || !self.valid
            || self.exclusion_sig != topology.exclusion_count()
            || self.charges_sig != charges
    }

    fn compile(
        &mut self,
        pairs: &[(u32, u32)],
        topology: &Topology,
        charges: &[f64],
        dh: Option<DebyeHuckel>,
    ) {
        self.lj_pairs.clear();
        self.ljdh_pairs.clear();
        self.ljdh_pref.clear();
        let mut dh_tagged: Vec<((u32, u32), f64)> = Vec::new();
        for &(i, j) in pairs {
            let (iu, ju) = (i as usize, j as usize);
            if topology.is_excluded(iu, ju) {
                continue;
            }
            match dh {
                Some(dh) if charges[iu] != 0.0 && charges[ju] != 0.0 => {
                    dh_tagged.push(((i, j), dh.prefactor(charges[iu], charges[ju])));
                }
                _ => self.lj_pairs.push((i, j)),
            }
        }
        self.lj_pairs.sort_unstable();
        dh_tagged.sort_unstable_by_key(|&(p, _)| p);
        for (p, pref) in dh_tagged {
            self.ljdh_pairs.push(p);
            self.ljdh_pref.push(pref);
        }

        self.chunks.clear();
        let mut start = 0;
        while start < self.lj_pairs.len() {
            let end = (start + CHUNK).min(self.lj_pairs.len());
            self.chunks.push((false, start, end));
            start = end;
        }
        start = 0;
        while start < self.ljdh_pairs.len() {
            let end = (start + CHUNK).min(self.ljdh_pairs.len());
            self.chunks.push((true, start, end));
            start = end;
        }

        self.charges_sig.clear();
        self.charges_sig.extend_from_slice(charges);
        self.exclusion_sig = topology.exclusion_count();
        self.valid = true;
    }

    fn pair_count(&self) -> u64 {
        (self.lj_pairs.len() + self.ljdh_pairs.len()) as u64
    }
}

/// Reusable per-chunk accumulator for the parallel path — allocated once,
/// zeroed and refilled each step.
#[derive(Debug, Default)]
struct ChunkScratch {
    forces: Vec<Vec3>,
    e_lj: f64,
    e_c: f64,
}

/// Non-bonded interaction evaluator owning its Verlet list.
#[derive(Debug)]
pub struct NonBonded {
    lj: LjParams,
    dh: Option<DebyeHuckel>,
    list: VerletList,
    tiers: TierList,
    scratch: Vec<ChunkScratch>,
    /// Particle-count threshold above which rayon parallel evaluation is
    /// used; below it serial wins (thread fan-out costs more than work).
    parallel_threshold: usize,
    /// Benchmarking switch: route `compute` through the legacy kernel.
    reference_mode: bool,
    /// Kernel work counters as telemetry handles — the single source of
    /// truth behind [`KernelCounters`], which is now a point-in-time
    /// view. A registry can export them live via
    /// [`bind_telemetry`](Self::bind_telemetry).
    rebuilds: Counter,
    invocations: Counter,
    pairs_evaluated: Counter,
}

impl NonBonded {
    /// Create an evaluator with LJ parameters, a neighbor-list cutoff (must
    /// be ≥ both the LJ and electrostatic ranges of interest) and skin.
    pub fn new(lj: LjParams, list_cutoff: f64, skin: f64) -> Self {
        assert!(
            list_cutoff + 1e-12 >= lj.cutoff,
            "neighbor list cutoff {list_cutoff} below LJ cutoff {}",
            lj.cutoff
        );
        NonBonded {
            lj,
            dh: None,
            list: VerletList::new(list_cutoff, skin),
            tiers: TierList::default(),
            scratch: Vec::new(),
            parallel_threshold: 4096,
            reference_mode: false,
            rebuilds: Counter::new(),
            invocations: Counter::new(),
            pairs_evaluated: Counter::new(),
        }
    }

    /// Route every [`compute`](Self::compute) call through the legacy
    /// per-pair-checked kernel instead of the tiered one. Benchmarking
    /// only: lets a full [`crate::sim::Simulation`] run on the baseline
    /// path for before/after comparisons.
    pub fn with_reference_kernel(mut self, on: bool) -> Self {
        self.reference_mode = on;
        self
    }

    /// Enable screened electrostatics (λ in Å, relative dielectric).
    pub fn with_debye_huckel(mut self, lambda: f64, epsilon_r: f64) -> Self {
        self.dh = Some(DebyeHuckel { lambda, epsilon_r });
        self.tiers.valid = false;
        self
    }

    /// Override the parallel threshold (tests / benchmarking).
    pub fn with_parallel_threshold(mut self, n: usize) -> Self {
        self.parallel_threshold = n;
        self
    }

    /// Number of neighbor-list rebuilds so far.
    pub fn rebuild_count(&self) -> u64 {
        self.list.rebuild_count()
    }

    /// Aggregate kernel counters (rebuilds, invocations, pairs evaluated).
    pub fn kernel_counters(&self) -> KernelCounters {
        KernelCounters {
            neighbor_rebuilds: self.rebuilds.get(),
            kernel_invocations: self.invocations.get(),
            pairs_evaluated: self.pairs_evaluated.get(),
        }
    }

    /// Export live views of this evaluator's counters through `t`'s
    /// registry (single-evaluator wiring; ensemble paths aggregate via
    /// [`KernelCounters::publish`] instead so concurrent realizations
    /// sum deterministically).
    pub fn bind_telemetry(&self, t: &Telemetry) {
        t.bind_counter("md.neighbor_rebuilds", &self.rebuilds);
        t.bind_counter("md.kernel_invocations", &self.invocations);
        t.bind_counter("md.pairs_evaluated", &self.pairs_evaluated);
    }

    /// Sizes of the compiled `(lj_only, lj_plus_dh)` tiers.
    pub fn tier_sizes(&self) -> (usize, usize) {
        (self.tiers.lj_pairs.len(), self.tiers.ljdh_pairs.len())
    }

    /// LJ parameters (batched engine mirrors this evaluator's physics).
    pub(crate) fn lj_params(&self) -> LjParams {
        self.lj
    }

    /// Debye–Hückel model, if electrostatics are enabled.
    pub(crate) fn debye(&self) -> Option<DebyeHuckel> {
        self.dh
    }

    /// Neighbor-list cutoff (list radius excludes skin).
    pub(crate) fn list_cutoff(&self) -> f64 {
        self.list.cutoff()
    }

    /// Neighbor-list skin margin.
    pub(crate) fn list_skin(&self) -> f64 {
        self.list.skin()
    }

    /// Evaluate LJ + electrostatics; returns `(lj_energy, coulomb_energy)`.
    pub fn compute(
        &mut self,
        topology: &Topology,
        positions: &[Vec3],
        charges: &[f64],
        _species: &[u32],
        forces: &mut [Vec3],
    ) -> (f64, f64) {
        if self.reference_mode {
            return self.compute_reference(topology, positions, charges, _species, forces);
        }
        let rebuilt = self.list.update(positions);
        if rebuilt {
            self.rebuilds.incr();
        }
        if self.tiers.stale(rebuilt, topology, charges) {
            self.tiers
                .compile(self.list.pairs(), topology, charges, self.dh);
        }
        self.invocations.incr();
        self.pairs_evaluated.add(self.tiers.pair_count());

        let lj_cut2 = self.lj.cutoff * self.lj.cutoff;
        let es_cut2 = self.list.cutoff() * self.list.cutoff();

        if positions.len() < self.parallel_threshold {
            let (e_lj_a, _) =
                lj_tier_kernel(&self.tiers.lj_pairs, positions, self.lj, lj_cut2, forces);
            let (e_lj_b, e_c) = ljdh_tier_kernel(
                &self.tiers.ljdh_pairs,
                &self.tiers.ljdh_pref,
                positions,
                self.lj,
                self.dh,
                lj_cut2,
                es_cut2,
                forces,
            );
            (e_lj_a + e_lj_b, e_c)
        } else {
            // Parallel path: each chunk accumulates into its own persistent
            // scratch buffer (no per-step allocation), then chunks are
            // reduced serially in index order — deterministic regardless of
            // thread scheduling; only FP reassociation across chunk
            // boundaries distinguishes it from the serial path.
            let n = positions.len();
            let nchunks = self.tiers.chunks.len();
            if self.scratch.len() < nchunks {
                self.scratch.resize_with(nchunks, ChunkScratch::default);
            }
            let tiers = &self.tiers;
            let lj = self.lj;
            let dh = self.dh;
            self.scratch[..nchunks]
                .par_iter_mut()
                .enumerate()
                .for_each(|(c, s)| {
                    s.forces.clear();
                    s.forces.resize(n, Vec3::zero());
                    let (is_dh, lo, hi) = tiers.chunks[c];
                    let (e_lj, e_c) = if is_dh {
                        ljdh_tier_kernel(
                            &tiers.ljdh_pairs[lo..hi],
                            &tiers.ljdh_pref[lo..hi],
                            positions,
                            lj,
                            dh,
                            lj_cut2,
                            es_cut2,
                            &mut s.forces,
                        )
                    } else {
                        lj_tier_kernel(
                            &tiers.lj_pairs[lo..hi],
                            positions,
                            lj,
                            lj_cut2,
                            &mut s.forces,
                        )
                    };
                    s.e_lj = e_lj;
                    s.e_c = e_c;
                });
            let mut e_lj = 0.0;
            let mut e_c = 0.0;
            for s in &self.scratch[..nchunks] {
                e_lj += s.e_lj;
                e_c += s.e_c;
                for (f, add) in forces.iter_mut().zip(&s.forces) {
                    *f += *add;
                }
            }
            (e_lj, e_c)
        }
    }

    /// The classic per-pair-checked evaluation over the raw Verlet cache:
    /// exclusion lookup, electrostatics branch, and zero-charge tests run
    /// per pair per step. Retained as the validation oracle for the tiered
    /// path (property tests assert equivalence) and as the baseline side of
    /// kernel benchmarks. Serial only.
    pub fn compute_reference(
        &mut self,
        topology: &Topology,
        positions: &[Vec3],
        charges: &[f64],
        _species: &[u32],
        forces: &mut [Vec3],
    ) -> (f64, f64) {
        if self.list.update(positions) {
            self.rebuilds.incr();
        }
        self.invocations.incr();
        self.pairs_evaluated.add(self.list.pairs().len() as u64);
        let lj_cut2 = self.lj.cutoff * self.lj.cutoff;
        let es_cut2 = self.list.cutoff() * self.list.cutoff();
        let mut e_lj = 0.0;
        let mut e_c = 0.0;
        for &(i, j) in self.list.pairs() {
            let (i, j) = (i as usize, j as usize);
            if topology.is_excluded(i, j) {
                continue;
            }
            let d = positions[j] - positions[i];
            let r2 = d.norm_sq();
            if r2 == 0.0 {
                continue;
            }
            let mut f_over_r = 0.0;
            if r2 <= lj_cut2 {
                let (e, f) = self.lj.energy_force_legacy(r2);
                e_lj += e;
                f_over_r += f;
            }
            if let Some(dh) = &self.dh {
                if r2 <= es_cut2 && charges[i] != 0.0 && charges[j] != 0.0 {
                    let (e, f) = dh.energy_force(charges[i], charges[j], r2);
                    e_c += e;
                    f_over_r += f;
                }
            }
            let fv = d * f_over_r;
            forces[j] += fv;
            forces[i] -= fv;
        }
        (e_lj, e_c)
    }
}

/// LJ-only tier: no exclusion, electrostatics, or charge tests — those
/// were resolved when the tier was compiled.
fn lj_tier_kernel(
    pairs: &[(u32, u32)],
    positions: &[Vec3],
    lj: LjParams,
    lj_cut2: f64,
    forces: &mut [Vec3],
) -> (f64, f64) {
    let mut e_lj = 0.0;
    for &(i, j) in pairs {
        let (i, j) = (i as usize, j as usize);
        let d = positions[j] - positions[i];
        let r2 = d.norm_sq();
        if r2 == 0.0 || r2 > lj_cut2 {
            continue;
        }
        let (e, f) = lj.energy_force(r2);
        e_lj += e;
        let fv = d * f;
        forces[j] += fv;
        forces[i] -= fv;
    }
    (e_lj, 0.0)
}

/// LJ + Debye–Hückel tier with precompiled per-pair prefactors.
#[allow(clippy::too_many_arguments)]
fn ljdh_tier_kernel(
    pairs: &[(u32, u32)],
    prefs: &[f64],
    positions: &[Vec3],
    lj: LjParams,
    dh: Option<DebyeHuckel>,
    lj_cut2: f64,
    es_cut2: f64,
    forces: &mut [Vec3],
) -> (f64, f64) {
    // The tier is only populated when DH is enabled; an empty tier makes
    // the unwrap unreachable otherwise.
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    let dh = dh.expect("LJ+DH tier populated without Debye-Huckel enabled");
    let mut e_lj = 0.0;
    let mut e_c = 0.0;
    for (&(i, j), &pref) in pairs.iter().zip(prefs) {
        let (i, j) = (i as usize, j as usize);
        let d = positions[j] - positions[i];
        let r2 = d.norm_sq();
        if r2 == 0.0 {
            continue;
        }
        let mut f_over_r = 0.0;
        if r2 <= lj_cut2 {
            let (e, f) = lj.energy_force(r2);
            e_lj += e;
            f_over_r += f;
        }
        if r2 <= es_cut2 {
            let (e, f) = dh.energy_force_pref(pref, r2);
            e_c += e;
            f_over_r += f;
        }
        let fv = d * f_over_r;
        forces[j] += fv;
        forces[i] -= fv;
    }
    (e_lj, e_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_minimum_at_two_pow_sixth_sigma() {
        let lj = LjParams::new(1.0, 1.0, 3.0, false);
        let rmin = 2.0f64.powf(1.0 / 6.0);
        let (_, f) = lj.energy_force(rmin * rmin);
        assert!(f.abs() < 1e-12, "force at minimum should vanish, got {f}");
        let (e, _) = lj.energy_force(rmin * rmin);
        assert!((e + 1.0).abs() < 1e-12, "well depth -ε at minimum, got {e}");
    }

    #[test]
    fn wca_is_repulsive_and_zero_at_cutoff() {
        let wca = LjParams::wca(1.0, 1.0);
        let (e_cut, _) = wca.energy_force(wca.cutoff * wca.cutoff);
        assert!(e_cut.abs() < 1e-12);
        for r in [0.8, 0.9, 1.0, 1.05, 1.1] {
            let (e, f) = wca.energy_force(r * r);
            assert!(e >= -1e-12, "WCA energy must be non-negative at r={r}: {e}");
            assert!(f >= -1e-9, "WCA force must be repulsive at r={r}: {f}");
        }
    }

    /// Satellite regression: the precomputed shift constant must equal the
    /// on-the-fly `raw_energy(cutoff²)` the kernel historically recomputed
    /// per pair, and shifted energies must match to 1e-12.
    #[test]
    fn shift_energy_matches_recomputed_raw_energy() {
        for (sigma, epsilon) in [(1.0, 1.0), (6.0, 0.5), (2.3, 0.17)] {
            for params in [
                LjParams::lj(sigma, epsilon),
                LjParams::wca(sigma, epsilon),
                LjParams::new(sigma, epsilon, 3.7 * sigma, true),
            ] {
                let recomputed = params.raw_energy(params.cutoff * params.cutoff);
                assert_eq!(
                    params.shift_energy(),
                    recomputed,
                    "shift constant must be bitwise-identical to raw_energy(cutoff²)"
                );
                // The shifted energy equals unshifted minus the constant.
                let unshifted = LjParams::new(sigma, epsilon, params.cutoff, false);
                for r in [0.8 * sigma, sigma, 1.05 * sigma] {
                    let (es, _) = params.energy_force(r * r);
                    let (eu, _) = unshifted.energy_force(r * r);
                    assert!(
                        (es - (eu - recomputed)).abs() < 1e-12,
                        "shifted energy off at r={r}: {es} vs {}",
                        eu - recomputed
                    );
                }
            }
        }
    }

    #[test]
    fn debye_huckel_reduces_to_coulomb_at_short_range() {
        let dh = DebyeHuckel {
            lambda: 1e9,
            epsilon_r: 1.0,
        };
        let (e, _) = dh.energy_force(1.0, -1.0, 4.0);
        assert!((e + COULOMB_KCAL / 2.0).abs() < 1e-3);
    }

    #[test]
    fn debye_huckel_screens_at_long_range() {
        let dh = DebyeHuckel {
            lambda: 3.0,
            epsilon_r: 80.0,
        };
        let (e_near, _) = dh.energy_force(1.0, 1.0, 9.0);
        let (e_far, _) = dh.energy_force(1.0, 1.0, 400.0);
        assert!(
            e_far.abs() < 1e-2 * e_near.abs(),
            "screening: {e_near} vs {e_far}"
        );
    }

    #[test]
    fn dh_prefactor_path_is_bitwise_identical() {
        let dh = DebyeHuckel {
            lambda: 3.04,
            epsilon_r: 78.0,
        };
        for (qi, qj, r2) in [(1.0, -1.0, 7.3), (0.25, 0.5, 2.0), (-2.0, -3.0, 55.5)] {
            let direct = dh.energy_force(qi, qj, r2);
            let pref = dh.energy_force_pref(dh.prefactor(qi, qj), r2);
            assert_eq!(direct, pref);
        }
    }

    #[test]
    fn dh_force_matches_numeric_gradient() {
        let dh = DebyeHuckel {
            lambda: 3.0,
            epsilon_r: 80.0,
        };
        let r = 2.7;
        let h = 1e-6;
        let e = |r: f64| dh.energy_force(1.0, -1.0, r * r).0;
        let f_num = -(e(r + h) - e(r - h)) / (2.0 * h);
        let (_, f_over_r) = dh.energy_force(1.0, -1.0, r * r);
        // force on j along +r is -dU/dr; f_over_r * r = |force|
        assert!(
            (f_over_r * r - f_num).abs() < 1e-5 * (1.0 + f_num.abs()),
            "{} vs {}",
            f_over_r * r,
            f_num
        );
    }

    fn grid(n: usize, spacing: f64) -> Vec<Vec3> {
        let side = (n as f64).cbrt().ceil() as usize;
        (0..n)
            .map(|i| {
                Vec3::new(
                    (i % side) as f64 * spacing,
                    ((i / side) % side) as f64 * spacing,
                    (i / (side * side)) as f64 * spacing,
                )
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree() {
        let pos = grid(200, 1.1);
        let charges: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let species = vec![0u32; 200];
        let topo = Topology::new();

        let mut serial = NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4)
            .with_debye_huckel(3.0, 80.0)
            .with_parallel_threshold(usize::MAX);
        let mut parallel = NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4)
            .with_debye_huckel(3.0, 80.0)
            .with_parallel_threshold(0);

        let mut fs = vec![Vec3::zero(); 200];
        let mut fp = vec![Vec3::zero(); 200];
        let (es_lj, es_c) = serial.compute(&topo, &pos, &charges, &species, &mut fs);
        let (ep_lj, ep_c) = parallel.compute(&topo, &pos, &charges, &species, &mut fp);
        assert!((es_lj - ep_lj).abs() < 1e-9 * (1.0 + es_lj.abs()));
        assert!((es_c - ep_c).abs() < 1e-9 * (1.0 + es_c.abs()));
        for (a, b) in fs.iter().zip(&fp) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn tiered_matches_reference_kernel() {
        let pos = grid(150, 1.15);
        // Mix of zero and nonzero charges exercises both tiers.
        let charges: Vec<f64> = (0..150)
            .map(|i| match i % 3 {
                0 => -1.0,
                1 => 0.0,
                _ => 0.5,
            })
            .collect();
        let species = vec![0u32; 150];
        let mut topo = Topology::new();
        for i in 0..149 {
            topo.add_exclusion(i, i + 1);
        }
        topo.finalize();

        let make = || {
            NonBonded::new(LjParams::wca(1.0, 1.0), 3.5, 0.4)
                .with_debye_huckel(3.0, 80.0)
                .with_parallel_threshold(usize::MAX)
        };
        let mut tiered = make();
        let mut reference = make();
        let mut ft = vec![Vec3::zero(); 150];
        let mut fr = vec![Vec3::zero(); 150];
        let (et_lj, et_c) = tiered.compute(&topo, &pos, &charges, &species, &mut ft);
        let (er_lj, er_c) = reference.compute_reference(&topo, &pos, &charges, &species, &mut fr);
        assert!((et_lj - er_lj).abs() < 1e-9 * (1.0 + er_lj.abs()));
        assert!((et_c - er_c).abs() < 1e-9 * (1.0 + er_c.abs()));
        for (a, b) in ft.iter().zip(&fr) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
        let (lj_tier, dh_tier) = tiered.tier_sizes();
        assert!(lj_tier > 0, "zero-charge pairs must land in the LJ tier");
        assert!(dh_tier > 0, "charged pairs must land in the DH tier");
    }

    #[test]
    fn tiers_recompile_when_charges_change() {
        let pos = grid(27, 1.1);
        let species = vec![0u32; 27];
        let topo = Topology::new();
        let mut nb = NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4).with_debye_huckel(3.0, 80.0);
        let mut f = vec![Vec3::zero(); 27];

        let charged = vec![1.0; 27];
        nb.compute(&topo, &pos, &charged, &species, &mut f);
        let (_, dh_before) = nb.tier_sizes();
        assert!(dh_before > 0);

        // Neutralize everything without moving: the list does not rebuild,
        // but the tiers must notice and recompile.
        let neutral = vec![0.0; 27];
        f.iter_mut().for_each(|v| *v = Vec3::zero());
        let (_, e_c) = nb.compute(&topo, &pos, &neutral, &species, &mut f);
        let (_, dh_after) = nb.tier_sizes();
        assert_eq!(dh_after, 0, "neutralized system must have an empty DH tier");
        assert_eq!(e_c, 0.0);
    }

    #[test]
    fn counters_track_invocations_and_pairs() {
        let pos = grid(64, 1.1);
        let charges = vec![0.5; 64];
        let species = vec![0u32; 64];
        let topo = Topology::new();
        let mut nb = NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4).with_debye_huckel(3.0, 80.0);
        let mut f = vec![Vec3::zero(); 64];
        assert_eq!(nb.kernel_counters(), KernelCounters::default());
        nb.compute(&topo, &pos, &charges, &species, &mut f);
        nb.compute(&topo, &pos, &charges, &species, &mut f);
        let c = nb.kernel_counters();
        assert_eq!(c.kernel_invocations, 2);
        assert_eq!(c.neighbor_rebuilds, 1);
        let (lj_n, dh_n) = nb.tier_sizes();
        assert_eq!(c.pairs_evaluated, 2 * (lj_n + dh_n) as u64);
    }

    #[test]
    fn exclusions_are_respected() {
        let pos = vec![Vec3::zero(), Vec3::new(1.0, 0.0, 0.0)];
        let charges = vec![0.0, 0.0];
        let species = vec![0, 0];
        let mut topo = Topology::new();
        topo.add_exclusion(0, 1);
        topo.finalize();
        let mut nb = NonBonded::new(LjParams::wca(1.0, 1.0), 2.0, 0.2);
        let mut f = vec![Vec3::zero(); 2];
        let (e, _) = nb.compute(&topo, &pos, &charges, &species, &mut f);
        assert_eq!(e, 0.0);
        assert_eq!(f[0], Vec3::zero());
    }

    #[test]
    fn newtons_third_law_holds() {
        let pos = grid(64, 1.05);
        let charges = vec![0.5; 64];
        let species = vec![0; 64];
        let topo = Topology::new();
        let mut nb = NonBonded::new(LjParams::wca(1.0, 0.8), 3.0, 0.3).with_debye_huckel(3.0, 80.0);
        let mut f = vec![Vec3::zero(); 64];
        nb.compute(&topo, &pos, &charges, &species, &mut f);
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-9, "net force {net:?}");
    }

    #[test]
    fn serial_evaluation_is_bitwise_deterministic() {
        let pos = grid(100, 1.08);
        let charges: Vec<f64> = (0..100)
            .map(|i| if i % 4 == 0 { 0.0 } else { -1.0 })
            .collect();
        let species = vec![0u32; 100];
        let topo = Topology::new();
        let run = || {
            let mut nb =
                NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4).with_debye_huckel(3.0, 80.0);
            let mut f = vec![Vec3::zero(); 100];
            let e = nb.compute(&topo, &pos, &charges, &species, &mut f);
            (e, f)
        };
        let (e1, f1) = run();
        let (e2, f2) = run();
        assert_eq!(e1, e2);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "below LJ cutoff")]
    fn list_cutoff_must_cover_lj() {
        NonBonded::new(LjParams::lj(2.0, 1.0), 1.0, 0.1);
    }

    use proptest::prelude::*;

    /// Deterministic pseudo-random positions in a box (see cell_list.rs).
    fn random_positions(n: usize, seed: u64, scale: f64) -> Vec<Vec3> {
        use spice_stats::rng::seed_stream;
        (0..n)
            .map(|i| {
                let u = |k: u64| {
                    (seed_stream(seed, i as u64 * 3 + k) >> 11) as f64 / (1u64 << 53) as f64
                };
                Vec3::new(u(0) * scale, u(1) * scale, u(2) * scale)
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Satellite property test: the tiered kernel must reproduce the
        /// per-pair-checked reference across random particle counts,
        /// charge patterns (including zeros), bonded exclusions and both
        /// electrostatics on/off — energies and forces to 1e-9.
        #[test]
        fn tiered_always_matches_reference(
            seed in 0u64..500,
            n in 4usize..80,
            charge_period in 1usize..5,
            bond_stride in 1usize..4,
            with_dh in 0u8..2,
        ) {
            let pos = random_positions(n, seed, 1.6 * (n as f64).cbrt());
            let charges: Vec<f64> = (0..n)
                .map(|i| match i % charge_period {
                    0 => 0.0,
                    1 => -1.0,
                    2 => 1.0,
                    _ => 0.5,
                })
                .collect();
            let species = vec![0u32; n];
            let mut topo = Topology::new();
            for i in (0..n.saturating_sub(1)).step_by(bond_stride) {
                topo.add_harmonic_bond(i, i + 1, 1.0, 10.0);
            }
            topo.finalize();
            let make = || {
                let nb = NonBonded::new(LjParams::new(1.0, 0.7, 2.5, true), 4.0, 0.4);
                if with_dh == 1 { nb.with_debye_huckel(3.0, 80.0) } else { nb }
            };
            let mut tiered = make();
            let mut reference = make();
            let mut f_t = vec![Vec3::zero(); n];
            let mut f_r = vec![Vec3::zero(); n];
            let (elj_t, ec_t) = tiered.compute(&topo, &pos, &charges, &species, &mut f_t);
            let (elj_r, ec_r) = reference.compute_reference(&topo, &pos, &charges, &species, &mut f_r);
            prop_assert!((elj_t - elj_r).abs() < 1e-9 * (1.0 + elj_r.abs()),
                "LJ energy: tiered {} vs reference {}", elj_t, elj_r);
            prop_assert!((ec_t - ec_r).abs() < 1e-9 * (1.0 + ec_r.abs()),
                "Coulomb energy: tiered {} vs reference {}", ec_t, ec_r);
            for (i, (a, b)) in f_t.iter().zip(&f_r).enumerate() {
                prop_assert!((*a - *b).norm() < 1e-9 * (1.0 + b.norm()),
                    "force on {}: tiered {:?} vs reference {:?}", i, a, b);
            }
        }
    }
}
