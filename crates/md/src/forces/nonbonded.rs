//! Non-bonded pair interactions: Lennard-Jones / WCA excluded volume plus
//! optional Debye–Hückel screened electrostatics, evaluated over a cached
//! Verlet list and parallelized with rayon for large systems.
//!
//! The coarse-grained ssDNA model uses WCA (purely repulsive LJ, cut at
//! 2^(1/6) σ) for excluded volume and Debye–Hückel for backbone charges in
//! implicit 1 M KCl — the electrolyte used in hemolysin translocation
//! experiments the paper builds on.

use crate::neighbor::VerletList;
use crate::topology::Topology;
use crate::vec3::Vec3;
use rayon::prelude::*;

/// Lennard-Jones parameters (single species-independent set; the CG model
/// uses one bead size, matching the pore builder).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjParams {
    /// Well depth ε (kcal/mol).
    pub epsilon: f64,
    /// Diameter σ (Å).
    pub sigma: f64,
    /// Interaction cutoff (Å). WCA uses 2^(1/6)σ.
    pub cutoff: f64,
    /// Shift the potential so U(cutoff) = 0 (removes the energy step).
    pub shifted: bool,
}

impl LjParams {
    /// Full attractive LJ with the conventional 2.5σ cutoff, shifted.
    pub fn lj(sigma: f64, epsilon: f64) -> Self {
        LjParams {
            epsilon,
            sigma,
            cutoff: 2.5 * sigma,
            shifted: true,
        }
    }

    /// Purely repulsive WCA: cutoff at the LJ minimum 2^(1/6)σ, shifted so
    /// the potential is continuous and ≥ 0.
    pub fn wca(sigma: f64, epsilon: f64) -> Self {
        LjParams {
            epsilon,
            sigma,
            cutoff: 2.0f64.powf(1.0 / 6.0) * sigma,
            shifted: true,
        }
    }

    /// Unshifted pair energy at squared distance `r2` (no cutoff check).
    #[inline]
    fn raw_energy(&self, r2: f64) -> f64 {
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        4.0 * self.epsilon * (s6 * s6 - s6)
    }

    /// Energy (with shift applied if configured) and the scalar
    /// `f/r` factor such that `force_on_j = (r_j - r_i) * (f/r)`.
    #[inline]
    pub fn energy_force(&self, r2: f64) -> (f64, f64) {
        let s2 = self.sigma * self.sigma / r2;
        let s6 = s2 * s2 * s2;
        let mut e = 4.0 * self.epsilon * (s6 * s6 - s6);
        if self.shifted {
            e -= self.raw_energy(self.cutoff * self.cutoff);
        }
        // dU/dr = -24 ε (2 s12 - s6) / r ⇒ f/r = 24 ε (2 s12 - s6) / r²
        let f_over_r = 24.0 * self.epsilon * (2.0 * s6 * s6 - s6) / r2;
        (e, f_over_r)
    }
}

/// Debye–Hückel screened Coulomb: `U = C q₁q₂ exp(-r/λ) / (ε_r r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebyeHuckel {
    /// Debye screening length λ (Å); ≈3 Å at 1 M KCl, ≈10 Å at 0.1 M.
    pub lambda: f64,
    /// Relative dielectric constant (≈80 for water).
    pub epsilon_r: f64,
}

/// Coulomb constant in kcal·mol⁻¹·Å·e⁻²: `e²/(4πε₀) = 332.06`.
pub const COULOMB_KCAL: f64 = 332.063_71;

impl DebyeHuckel {
    /// Energy and `f/r` factor for charges `qi`, `qj` at squared
    /// separation `r2`.
    #[inline]
    pub fn energy_force(&self, qi: f64, qj: f64, r2: f64) -> (f64, f64) {
        let r = r2.sqrt();
        let pref = COULOMB_KCAL * qi * qj / self.epsilon_r;
        let screen = (-r / self.lambda).exp();
        let e = pref * screen / r;
        // dU/dr = -pref screen (1/r² + 1/(λ r)) ⇒ f/r = pref·screen·(1/r³ + 1/(λ r²))
        let f_over_r = pref * screen * (1.0 / (r2 * r) + 1.0 / (self.lambda * r2));
        (e, f_over_r)
    }
}

/// Non-bonded interaction evaluator owning its Verlet list.
#[derive(Debug)]
pub struct NonBonded {
    lj: LjParams,
    dh: Option<DebyeHuckel>,
    list: VerletList,
    /// Particle-count threshold above which rayon parallel evaluation is
    /// used; below it serial wins (thread fan-out costs more than work).
    parallel_threshold: usize,
}

impl NonBonded {
    /// Create an evaluator with LJ parameters, a neighbor-list cutoff (must
    /// be ≥ both the LJ and electrostatic ranges of interest) and skin.
    pub fn new(lj: LjParams, list_cutoff: f64, skin: f64) -> Self {
        assert!(
            list_cutoff + 1e-12 >= lj.cutoff,
            "neighbor list cutoff {list_cutoff} below LJ cutoff {}",
            lj.cutoff
        );
        NonBonded {
            lj,
            dh: None,
            list: VerletList::new(list_cutoff, skin),
            parallel_threshold: 4096,
        }
    }

    /// Enable screened electrostatics (λ in Å, relative dielectric).
    pub fn with_debye_huckel(mut self, lambda: f64, epsilon_r: f64) -> Self {
        self.dh = Some(DebyeHuckel { lambda, epsilon_r });
        self
    }

    /// Override the parallel threshold (tests / benchmarking).
    pub fn with_parallel_threshold(mut self, n: usize) -> Self {
        self.parallel_threshold = n;
        self
    }

    /// Number of neighbor-list rebuilds so far.
    pub fn rebuild_count(&self) -> u64 {
        self.list.rebuild_count()
    }

    /// Evaluate LJ + electrostatics; returns `(lj_energy, coulomb_energy)`.
    pub fn compute(
        &mut self,
        topology: &Topology,
        positions: &[Vec3],
        charges: &[f64],
        _species: &[u32],
        forces: &mut [Vec3],
    ) -> (f64, f64) {
        self.list.update(positions);
        let lj_cut2 = self.lj.cutoff * self.lj.cutoff;
        let es_cut2 = self.list.cutoff() * self.list.cutoff();
        let pairs = self.list.pairs();

        if positions.len() < self.parallel_threshold {
            let mut e_lj = 0.0;
            let mut e_c = 0.0;
            for &(i, j) in pairs {
                let (i, j) = (i as usize, j as usize);
                if topology.is_excluded(i, j) {
                    continue;
                }
                let d = positions[j] - positions[i];
                let r2 = d.norm_sq();
                if r2 == 0.0 {
                    continue;
                }
                let mut f_over_r = 0.0;
                if r2 <= lj_cut2 {
                    let (e, f) = self.lj.energy_force(r2);
                    e_lj += e;
                    f_over_r += f;
                }
                if let Some(dh) = &self.dh {
                    if r2 <= es_cut2 && charges[i] != 0.0 && charges[j] != 0.0 {
                        let (e, f) = dh.energy_force(charges[i], charges[j], r2);
                        e_c += e;
                        f_over_r += f;
                    }
                }
                let fv = d * f_over_r;
                forces[j] += fv;
                forces[i] -= fv;
            }
            (e_lj, e_c)
        } else {
            // Parallel path: fold pairs into per-thread force buffers, then
            // reduce — no atomics, deterministic energies up to FP
            // reassociation of disjoint chunk sums.
            let n = positions.len();
            let lj = self.lj;
            let dh = self.dh;
            let (e_lj, e_c, fbuf) = pairs
                .par_chunks(8192)
                .map(|chunk| {
                    let mut local = vec![Vec3::zero(); n];
                    let mut e_lj = 0.0;
                    let mut e_c = 0.0;
                    for &(i, j) in chunk {
                        let (i, j) = (i as usize, j as usize);
                        if topology.is_excluded(i, j) {
                            continue;
                        }
                        let d = positions[j] - positions[i];
                        let r2 = d.norm_sq();
                        if r2 == 0.0 {
                            continue;
                        }
                        let mut f_over_r = 0.0;
                        if r2 <= lj_cut2 {
                            let (e, f) = lj.energy_force(r2);
                            e_lj += e;
                            f_over_r += f;
                        }
                        if let Some(dh) = &dh {
                            if r2 <= es_cut2 && charges[i] != 0.0 && charges[j] != 0.0 {
                                let (e, f) = dh.energy_force(charges[i], charges[j], r2);
                                e_c += e;
                                f_over_r += f;
                            }
                        }
                        let fv = d * f_over_r;
                        local[j] += fv;
                        local[i] -= fv;
                    }
                    (e_lj, e_c, local)
                })
                .reduce(
                    || (0.0, 0.0, vec![Vec3::zero(); n]),
                    |(ea, ca, mut fa), (eb, cb, fb)| {
                        for (a, b) in fa.iter_mut().zip(&fb) {
                            *a += *b;
                        }
                        (ea + eb, ca + cb, fa)
                    },
                );
            for (f, add) in forces.iter_mut().zip(&fbuf) {
                *f += *add;
            }
            (e_lj, e_c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lj_minimum_at_two_pow_sixth_sigma() {
        let lj = LjParams {
            epsilon: 1.0,
            sigma: 1.0,
            cutoff: 3.0,
            shifted: false,
        };
        let rmin = 2.0f64.powf(1.0 / 6.0);
        let (_, f) = lj.energy_force(rmin * rmin);
        assert!(f.abs() < 1e-12, "force at minimum should vanish, got {f}");
        let (e, _) = lj.energy_force(rmin * rmin);
        assert!((e + 1.0).abs() < 1e-12, "well depth -ε at minimum, got {e}");
    }

    #[test]
    fn wca_is_repulsive_and_zero_at_cutoff() {
        let wca = LjParams::wca(1.0, 1.0);
        let (e_cut, _) = wca.energy_force(wca.cutoff * wca.cutoff);
        assert!(e_cut.abs() < 1e-12);
        for r in [0.8, 0.9, 1.0, 1.05, 1.1] {
            let (e, f) = wca.energy_force(r * r);
            assert!(e >= -1e-12, "WCA energy must be non-negative at r={r}: {e}");
            assert!(f >= -1e-9, "WCA force must be repulsive at r={r}: {f}");
        }
    }

    #[test]
    fn debye_huckel_reduces_to_coulomb_at_short_range() {
        let dh = DebyeHuckel {
            lambda: 1e9,
            epsilon_r: 1.0,
        };
        let (e, _) = dh.energy_force(1.0, -1.0, 4.0);
        assert!((e + COULOMB_KCAL / 2.0).abs() < 1e-3);
    }

    #[test]
    fn debye_huckel_screens_at_long_range() {
        let dh = DebyeHuckel {
            lambda: 3.0,
            epsilon_r: 80.0,
        };
        let (e_near, _) = dh.energy_force(1.0, 1.0, 9.0);
        let (e_far, _) = dh.energy_force(1.0, 1.0, 400.0);
        assert!(e_far.abs() < 1e-2 * e_near.abs(), "screening: {e_near} vs {e_far}");
    }

    #[test]
    fn dh_force_matches_numeric_gradient() {
        let dh = DebyeHuckel {
            lambda: 3.0,
            epsilon_r: 80.0,
        };
        let r = 2.7;
        let h = 1e-6;
        let e = |r: f64| dh.energy_force(1.0, -1.0, r * r).0;
        let f_num = -(e(r + h) - e(r - h)) / (2.0 * h);
        let (_, f_over_r) = dh.energy_force(1.0, -1.0, r * r);
        // force on j along +r is -dU/dr; f_over_r * r = |force|
        assert!(
            (f_over_r * r - f_num).abs() < 1e-5 * (1.0 + f_num.abs()),
            "{} vs {}",
            f_over_r * r,
            f_num
        );
    }

    fn grid(n: usize, spacing: f64) -> Vec<Vec3> {
        let side = (n as f64).cbrt().ceil() as usize;
        (0..n)
            .map(|i| {
                Vec3::new(
                    (i % side) as f64 * spacing,
                    ((i / side) % side) as f64 * spacing,
                    (i / (side * side)) as f64 * spacing,
                )
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree() {
        let pos = grid(200, 1.1);
        let charges: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let species = vec![0u32; 200];
        let topo = Topology::new();

        let mut serial = NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4)
            .with_debye_huckel(3.0, 80.0)
            .with_parallel_threshold(usize::MAX);
        let mut parallel = NonBonded::new(LjParams::wca(1.0, 1.0), 3.0, 0.4)
            .with_debye_huckel(3.0, 80.0)
            .with_parallel_threshold(0);

        let mut fs = vec![Vec3::zero(); 200];
        let mut fp = vec![Vec3::zero(); 200];
        let (es_lj, es_c) = serial.compute(&topo, &pos, &charges, &species, &mut fs);
        let (ep_lj, ep_c) = parallel.compute(&topo, &pos, &charges, &species, &mut fp);
        assert!((es_lj - ep_lj).abs() < 1e-9 * (1.0 + es_lj.abs()));
        assert!((es_c - ep_c).abs() < 1e-9 * (1.0 + es_c.abs()));
        for (a, b) in fs.iter().zip(&fp) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn exclusions_are_respected() {
        let pos = vec![Vec3::zero(), Vec3::new(1.0, 0.0, 0.0)];
        let charges = vec![0.0, 0.0];
        let species = vec![0, 0];
        let mut topo = Topology::new();
        topo.add_exclusion(0, 1);
        topo.finalize();
        let mut nb = NonBonded::new(LjParams::wca(1.0, 1.0), 2.0, 0.2);
        let mut f = vec![Vec3::zero(); 2];
        let (e, _) = nb.compute(&topo, &pos, &charges, &species, &mut f);
        assert_eq!(e, 0.0);
        assert_eq!(f[0], Vec3::zero());
    }

    #[test]
    fn newtons_third_law_holds() {
        let pos = grid(64, 1.05);
        let charges = vec![0.5; 64];
        let species = vec![0; 64];
        let topo = Topology::new();
        let mut nb = NonBonded::new(LjParams::wca(1.0, 0.8), 3.0, 0.3).with_debye_huckel(3.0, 80.0);
        let mut f = vec![Vec3::zero(); 64];
        nb.compute(&topo, &pos, &charges, &species, &mut f);
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-9, "net force {net:?}");
    }

    #[test]
    #[should_panic(expected = "below LJ cutoff")]
    fn list_cutoff_must_cover_lj() {
        NonBonded::new(LjParams::lj(2.0, 1.0), 1.0, 0.1);
    }
}
