//! Force-field evaluation.
//!
//! A [`ForceField`] owns the bonded terms (from a [`Topology`]), an
//! optional non-bonded pair interaction (WCA/LJ + screened electrostatics
//! on a cached Verlet list), any number of external one-body potentials
//! (the pore confinement from `spice-pore` plugs in here), and harmonic
//! restraints. `evaluate` zeroes the accumulators, adds every term and
//! returns the per-term energy breakdown.
//!
//! Additional per-step bias forces (the SMD pulling spring, IMD user
//! forces) are *not* force-field terms; they are applied by simulation
//! hooks after `evaluate`, mirroring how NAMD layers SMD/IMD on top of the
//! force field.

pub mod bonded;
pub mod external;
pub mod nonbonded;
pub mod restraint;

pub use bonded::{angle_forces, bond_forces, dihedral_forces};
pub use external::ExternalPotential;
pub use nonbonded::{LjParams, NonBonded};
pub use restraint::Restraint;

use crate::system::System;
use crate::topology::Topology;

/// Per-term potential-energy breakdown (kcal/mol).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Energies {
    /// Harmonic + FENE bond energy.
    pub bond: f64,
    /// Harmonic angle energy.
    pub angle: f64,
    /// Cosine dihedral energy.
    pub dihedral: f64,
    /// Non-bonded LJ/WCA energy.
    pub nonbonded: f64,
    /// Screened Coulomb energy.
    pub coulomb: f64,
    /// External (pore/membrane) potential energy.
    pub external: f64,
    /// Restraint energy.
    pub restraint: f64,
}

impl Energies {
    /// Total potential energy.
    pub fn total(&self) -> f64 {
        self.bond
            + self.angle
            + self.dihedral
            + self.nonbonded
            + self.coulomb
            + self.external
            + self.restraint
    }
}

/// The complete interaction model for a system.
pub struct ForceField {
    topology: Topology,
    nonbonded: Option<NonBonded>,
    externals: Vec<Box<dyn ExternalPotential>>,
    restraints: Vec<Restraint>,
}

impl ForceField {
    /// Build a force field over a topology (finalizes its exclusions).
    pub fn new(mut topology: Topology) -> Self {
        topology.finalize();
        ForceField {
            topology,
            nonbonded: None,
            externals: Vec::new(),
            restraints: Vec::new(),
        }
    }

    /// Attach a non-bonded pair interaction.
    pub fn with_nonbonded(mut self, nb: NonBonded) -> Self {
        self.nonbonded = Some(nb);
        self
    }

    /// Attach an external one-body potential.
    pub fn with_external<P: ExternalPotential + 'static>(mut self, p: P) -> Self {
        self.externals.push(Box::new(p));
        self
    }

    /// Attach a harmonic position restraint.
    pub fn with_restraint(mut self, r: Restraint) -> Self {
        self.restraints.push(r);
        self
    }

    /// Shared access to the topology (groups, bonds).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the topology (e.g. to redefine groups).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Pair-kernel work counters; all-zero when there is no non-bonded
    /// term.
    pub fn kernel_counters(&self) -> crate::observables::KernelCounters {
        self.nonbonded
            .as_ref()
            .map(NonBonded::kernel_counters)
            .unwrap_or_default()
    }

    /// Export live kernel-counter views through `t`'s registry (no-op
    /// without a non-bonded term).
    pub fn bind_telemetry(&self, t: &spice_telemetry::Telemetry) {
        if let Some(nb) = &self.nonbonded {
            nb.bind_telemetry(t);
        }
    }

    /// Non-bonded evaluator, if any (batched engine reads its parameters
    /// to mirror the pair physics across replica lanes).
    pub(crate) fn nonbonded(&self) -> Option<&NonBonded> {
        self.nonbonded.as_ref()
    }

    /// External one-body potentials, in application order.
    pub(crate) fn externals(&self) -> &[Box<dyn ExternalPotential>] {
        &self.externals
    }

    /// Harmonic restraints, in application order.
    pub(crate) fn restraints(&self) -> &[Restraint] {
        &self.restraints
    }

    /// Evaluate all terms: zeroes the system's force accumulators first,
    /// then adds every contribution. Returns the energy breakdown.
    pub fn evaluate(&mut self, system: &mut System) -> Energies {
        system.zero_forces();
        let mut e = Energies::default();

        {
            let (positions, charges, species, forces) = system.force_eval_view();

            e.bond = bond_forces(self.topology.bonds(), positions, forces);
            e.angle = angle_forces(self.topology.angles(), positions, forces);
            e.dihedral = dihedral_forces(self.topology.dihedrals(), positions, forces);
            if let Some(nb) = &mut self.nonbonded {
                let (elj, ec) = nb.compute(&self.topology, positions, charges, species, forces);
                e.nonbonded = elj;
                e.coulomb = ec;
            }
            for ext in &self.externals {
                e.external += ext.add_forces(positions, species, forces);
            }
            for r in &self.restraints {
                e.restraint += r.add_forces(positions, forces);
            }
        }
        e
    }
}

impl std::fmt::Debug for ForceField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForceField")
            .field("bonds", &self.topology.bonds().len())
            .field("angles", &self.topology.angles().len())
            .field("dihedrals", &self.topology.dihedrals().len())
            .field("nonbonded", &self.nonbonded.is_some())
            .field("externals", &self.externals.len())
            .field("restraints", &self.restraints.len())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    #[test]
    fn energies_total_sums_terms() {
        let e = Energies {
            bond: 1.0,
            angle: 2.0,
            dihedral: 3.0,
            nonbonded: 4.0,
            coulomb: 5.0,
            external: 6.0,
            restraint: 7.0,
        };
        assert_eq!(e.total(), 28.0);
    }

    #[test]
    fn evaluate_zeroes_then_accumulates() {
        let mut sys = System::new();
        sys.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        sys.add_particle(Vec3::new(2.0, 0.0, 0.0), 1.0, 0.0, 0);
        sys.forces_mut()[0] = Vec3::new(99.0, 0.0, 0.0); // stale garbage

        let mut topo = Topology::new();
        topo.add_harmonic_bond(0, 1, 1.0, 10.0);
        let mut ff = ForceField::new(topo);
        let e = ff.evaluate(&mut sys);
        // U = k (r - r0)^2 = 10 * 1 = 10
        assert!((e.bond - 10.0).abs() < 1e-12);
        assert!((e.total() - 10.0).abs() < 1e-12);
        // Forces: pulled together along x, stale value gone.
        assert!(sys.forces()[0].x > 0.0);
        assert!(
            (sys.forces()[0] + sys.forces()[1]).norm() < 1e-12,
            "Newton's third law"
        );
    }

    #[test]
    fn force_is_negative_gradient() {
        // Numerical gradient check across all term types at once.
        let mut sys = System::new();
        sys.add_particle(Vec3::new(0.1, -0.2, 0.3), 1.0, 1.0, 0);
        sys.add_particle(Vec3::new(1.3, 0.4, -0.1), 1.0, -1.0, 0);
        sys.add_particle(Vec3::new(2.2, -0.3, 0.5), 1.0, 0.5, 0);
        sys.add_particle(Vec3::new(2.6, 0.6, 0.2), 1.0, -0.5, 0);

        let mut topo = Topology::new();
        topo.add_harmonic_bond(0, 1, 1.2, 30.0);
        topo.add_fene_bond(1, 2, 3.0, 10.0);
        topo.add_angle(0, 1, 2, 2.0, 8.0);
        topo.add_dihedral(0, 1, 2, 3, 2, 0.5, 1.5);
        let mut ff = ForceField::new(topo)
            .with_nonbonded(
                NonBonded::new(LjParams::wca(1.0, 0.5), 3.0, 0.5).with_debye_huckel(1.0, 80.0),
            )
            .with_restraint(Restraint::harmonic(3, Vec3::new(2.7, 0.5, 0.1), 5.0));

        let e0 = ff.evaluate(&mut sys);
        let forces: Vec<Vec3> = sys.forces().to_vec();
        let h = 1e-6;
        for i in 0..sys.len() {
            for axis in 0..3 {
                let mut plus = sys.clone();
                let mut minus = sys.clone();
                match axis {
                    0 => {
                        plus.positions_mut()[i].x += h;
                        minus.positions_mut()[i].x -= h;
                    }
                    1 => {
                        plus.positions_mut()[i].y += h;
                        minus.positions_mut()[i].y -= h;
                    }
                    _ => {
                        plus.positions_mut()[i].z += h;
                        minus.positions_mut()[i].z -= h;
                    }
                }
                let ep = ff.evaluate(&mut plus).total();
                let em = ff.evaluate(&mut minus).total();
                let f_num = -(ep - em) / (2.0 * h);
                let f_ana = match axis {
                    0 => forces[i].x,
                    1 => forces[i].y,
                    _ => forces[i].z,
                };
                assert!(
                    (f_num - f_ana).abs() < 1e-4 * (1.0 + f_ana.abs()),
                    "particle {i} axis {axis}: numeric {f_num} vs analytic {f_ana} (E={})",
                    e0.total()
                );
            }
        }
    }
}
