//! Bonded force kernels: harmonic/FENE bonds, harmonic angles, cosine
//! dihedrals. Each kernel adds forces into the accumulators and returns
//! the term's potential energy.
//!
//! Conventions follow CHARMM/NAMD: bond `U = k (r − r0)²`,
//! angle `U = k (θ − θ0)²`, dihedral `U = k (1 + cos(nφ − δ))`.

use crate::topology::{Angle, Bond, BondKind, Dihedral};
use crate::vec3::Vec3;

/// Accumulate bond forces; returns bond energy (kcal/mol).
pub fn bond_forces(bonds: &[Bond], positions: &[Vec3], forces: &mut [Vec3]) -> f64 {
    let mut energy = 0.0;
    for b in bonds {
        let d = positions[b.j] - positions[b.i];
        let r = d.norm();
        // spice-lint: allow(N002) exact-zero separation guard: coincident beads
        if r == 0.0 {
            // Coincident bonded particles: force direction undefined; skip
            // (energy contribution of harmonic term is k r0², FENE is 0).
            if b.kind == BondKind::Harmonic {
                energy += b.k * b.r0 * b.r0;
            }
            continue;
        }
        let dir = d / r;
        match b.kind {
            BondKind::Harmonic => {
                let dr = r - b.r0;
                energy += b.k * dr * dr;
                // F_j = -dU/dr · dir = -2k (r - r0) dir
                let f = dir * (-2.0 * b.k * dr);
                forces[b.j] += f;
                forces[b.i] -= f;
            }
            BondKind::Fene => {
                let x = r / b.r0;
                // Cap at 99% extension: beyond it, continue linearly with
                // the force at the cap. Steep enough to restore any
                // transient over-extension, finite enough to stay
                // integrable at production time steps (a hard clamp here
                // is a numerical bomb: one rare over-extension event would
                // kick velocities beyond recovery).
                const X_CAP: f64 = 0.99;
                if x >= X_CAP {
                    let f_cap = b.k * (X_CAP * b.r0) / (1.0 - X_CAP * X_CAP);
                    let e_cap = -0.5 * b.k * b.r0 * b.r0 * (1.0 - X_CAP * X_CAP).ln();
                    energy += e_cap + f_cap * (r - X_CAP * b.r0);
                    let f = dir * (-f_cap);
                    forces[b.j] += f;
                    forces[b.i] -= f;
                    continue;
                }
                energy += -0.5 * b.k * b.r0 * b.r0 * (1.0 - x * x).ln();
                // dU/dr = k r / (1 - x²)
                let f = dir * (-b.k * r / (1.0 - x * x));
                forces[b.j] += f;
                forces[b.i] -= f;
            }
        }
    }
    energy
}

/// Accumulate harmonic-angle forces; returns angle energy (kcal/mol).
pub fn angle_forces(angles: &[Angle], positions: &[Vec3], forces: &mut [Vec3]) -> f64 {
    let mut energy = 0.0;
    for a in angles {
        let rij = positions[a.i] - positions[a.j];
        let rkj = positions[a.k_idx] - positions[a.j];
        let (nij, nkj) = (rij.norm(), rkj.norm());
        // spice-lint: allow(N002) exact-zero bond-length guard: degenerate angle
        if nij == 0.0 || nkj == 0.0 {
            continue;
        }
        let cos_t = (rij.dot(rkj) / (nij * nkj)).clamp(-1.0, 1.0);
        let theta = cos_t.acos();
        let dt = theta - a.theta0;
        energy += a.k * dt * dt;
        // dU/dθ = 2k dθ ; chain rule via standard angle-force expressions.
        let sin_t = (1.0 - cos_t * cos_t).sqrt().max(1e-8);
        let coeff = 2.0 * a.k * dt / sin_t;
        let fi = (rkj / (nij * nkj) - rij * (cos_t / (nij * nij))) * coeff;
        let fk = (rij / (nij * nkj) - rkj * (cos_t / (nkj * nkj))) * coeff;
        forces[a.i] += fi;
        forces[a.k_idx] += fk;
        forces[a.j] -= fi + fk;
    }
    energy
}

/// Accumulate cosine-dihedral forces; returns dihedral energy (kcal/mol).
pub fn dihedral_forces(dihedrals: &[Dihedral], positions: &[Vec3], forces: &mut [Vec3]) -> f64 {
    let mut energy = 0.0;
    for d in dihedrals {
        let b1 = positions[d.j] - positions[d.i];
        let b2 = positions[d.k_idx] - positions[d.j];
        let b3 = positions[d.l] - positions[d.k_idx];
        let n1 = b1.cross(b2);
        let n2 = b2.cross(b3);
        let (n1n, n2n, b2n) = (n1.norm(), n2.norm(), b2.norm());
        if n1n < 1e-10 || n2n < 1e-10 || b2n < 1e-10 {
            continue; // collinear degenerate geometry
        }
        let cos_phi = (n1.dot(n2) / (n1n * n2n)).clamp(-1.0, 1.0);
        let sin_phi = n1.cross(n2).dot(b2) / (n1n * n2n * b2n);
        let phi = sin_phi.atan2(cos_phi);
        let nf = d.n as f64;
        energy += d.k * (1.0 + (nf * phi - d.delta).cos());
        // dU/dφ = -k n sin(nφ - δ)
        let du_dphi = -d.k * nf * (nf * phi - d.delta).sin();
        // Standard analytic gradient (see e.g. Allen & Tildesley):
        let fi = n1 * (du_dphi * b2n / (n1n * n1n));
        let fl = n2 * (-du_dphi * b2n / (n2n * n2n));
        let p = b1.dot(b2) / (b2n * b2n);
        let q = b3.dot(b2) / (b2n * b2n);
        let fj = fi * (-(1.0 + p)) + fl * q;
        let fk = fl * (-(1.0 + q)) + fi * p;
        forces[d.i] += fi;
        forces[d.j] += fj;
        forces[d.k_idx] += fk;
        forces[d.l] += fl;
    }
    energy
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn numeric_force<F: Fn(&[Vec3]) -> f64>(energy: F, pos: &[Vec3], i: usize, axis: usize) -> f64 {
        let h = 1e-6;
        let mut p = pos.to_vec();
        let mut m = pos.to_vec();
        match axis {
            0 => {
                p[i].x += h;
                m[i].x -= h;
            }
            1 => {
                p[i].y += h;
                m[i].y -= h;
            }
            _ => {
                p[i].z += h;
                m[i].z -= h;
            }
        }
        -(energy(&p) - energy(&m)) / (2.0 * h)
    }

    #[test]
    fn harmonic_bond_energy_and_force() {
        let mut t = Topology::new();
        t.add_harmonic_bond(0, 1, 1.0, 100.0);
        let pos = [Vec3::zero(), Vec3::new(1.5, 0.0, 0.0)];
        let mut f = [Vec3::zero(); 2];
        let e = bond_forces(t.bonds(), &pos, &mut f);
        assert!((e - 100.0 * 0.25).abs() < 1e-12);
        // F_1 = -2k(r-r0) = -100 along +x (pull back)
        assert!((f[1].x + 100.0).abs() < 1e-9);
        assert!((f[0].x - 100.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_bond_at_equilibrium_is_forceless() {
        let mut t = Topology::new();
        t.add_harmonic_bond(0, 1, 2.0, 50.0);
        let pos = [Vec3::zero(), Vec3::new(0.0, 2.0, 0.0)];
        let mut f = [Vec3::zero(); 2];
        let e = bond_forces(t.bonds(), &pos, &mut f);
        assert!(e.abs() < 1e-12);
        assert!(f[0].norm() < 1e-12 && f[1].norm() < 1e-12);
    }

    #[test]
    fn fene_diverges_near_max_extension() {
        let mut t = Topology::new();
        t.add_fene_bond(0, 1, 2.0, 10.0);
        let near = [Vec3::zero(), Vec3::new(1.99, 0.0, 0.0)];
        let far = [Vec3::zero(), Vec3::new(1.0, 0.0, 0.0)];
        let mut f_near = [Vec3::zero(); 2];
        let mut f_far = [Vec3::zero(); 2];
        bond_forces(t.bonds(), &near, &mut f_near);
        bond_forces(t.bonds(), &far, &mut f_far);
        assert!(
            f_near[1].x.abs() > 20.0 * f_far[1].x.abs(),
            "FENE force must stiffen near R0: {} vs {}",
            f_near[1].x,
            f_far[1].x
        );
    }

    #[test]
    fn fene_beyond_max_extension_clamped_finite() {
        let mut t = Topology::new();
        t.add_fene_bond(0, 1, 2.0, 10.0);
        let pos = [Vec3::zero(), Vec3::new(2.5, 0.0, 0.0)];
        let mut f = [Vec3::zero(); 2];
        let e = bond_forces(t.bonds(), &pos, &mut f);
        assert!(e.is_finite());
        assert!(f[1].is_finite());
        assert!(f[1].x < 0.0, "restoring force points back");
    }

    #[test]
    fn bond_force_matches_numeric_gradient() {
        let mut t = Topology::new();
        t.add_harmonic_bond(0, 1, 1.3, 42.0);
        t.add_fene_bond(1, 2, 3.0, 7.0);
        let pos = [
            Vec3::new(0.1, 0.2, -0.1),
            Vec3::new(1.4, -0.3, 0.5),
            Vec3::new(2.0, 0.7, 0.2),
        ];
        let bonds = t.bonds().to_vec();
        let energy = |p: &[Vec3]| {
            let mut f = vec![Vec3::zero(); p.len()];
            bond_forces(&bonds, p, &mut f)
        };
        let mut f = vec![Vec3::zero(); 3];
        bond_forces(&bonds, &pos, &mut f);
        for i in 0..3 {
            for ax in 0..3 {
                let num = numeric_force(energy, &pos, i, ax);
                let ana = [f[i].x, f[i].y, f[i].z][ax];
                assert!(
                    (num - ana).abs() < 1e-5 * (1.0 + ana.abs()),
                    "i={i} ax={ax}: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn angle_force_matches_numeric_gradient() {
        let mut t = Topology::new();
        t.add_angle(0, 1, 2, 1.8, 12.0);
        let pos = [
            Vec3::new(1.0, 0.3, 0.0),
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(-0.4, 1.1, -0.2),
        ];
        let angles = t.angles().to_vec();
        let energy = |p: &[Vec3]| {
            let mut f = vec![Vec3::zero(); p.len()];
            angle_forces(&angles, p, &mut f)
        };
        let mut f = vec![Vec3::zero(); 3];
        angle_forces(&angles, &pos, &mut f);
        for i in 0..3 {
            for ax in 0..3 {
                let num = numeric_force(energy, &pos, i, ax);
                let ana = [f[i].x, f[i].y, f[i].z][ax];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + ana.abs()),
                    "i={i} ax={ax}: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn angle_forces_conserve_momentum() {
        let mut t = Topology::new();
        t.add_angle(0, 1, 2, 2.1, 9.0);
        let pos = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::zero(),
            Vec3::new(0.2, 1.3, 0.4),
        ];
        let mut f = vec![Vec3::zero(); 3];
        angle_forces(t.angles(), &pos, &mut f);
        let net: Vec3 = f.iter().copied().sum();
        assert!(net.norm() < 1e-10);
    }

    #[test]
    fn dihedral_force_matches_numeric_gradient() {
        let mut t = Topology::new();
        t.add_dihedral(0, 1, 2, 3, 3, 0.7, 2.5);
        let pos = [
            Vec3::new(0.0, 1.0, 0.2),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.1),
            Vec3::new(1.3, 0.9, -0.6),
        ];
        let dihedrals = t.dihedrals().to_vec();
        let energy = |p: &[Vec3]| {
            let mut f = vec![Vec3::zero(); p.len()];
            dihedral_forces(&dihedrals, p, &mut f)
        };
        let mut f = vec![Vec3::zero(); 4];
        dihedral_forces(&dihedrals, &pos, &mut f);
        for i in 0..4 {
            for ax in 0..3 {
                let num = numeric_force(energy, &pos, i, ax);
                let ana = [f[i].x, f[i].y, f[i].z][ax];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + ana.abs()),
                    "i={i} ax={ax}: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn dihedral_energy_bounds() {
        // U = k (1 + cos(...)) ∈ [0, 2k].
        let mut t = Topology::new();
        t.add_dihedral(0, 1, 2, 3, 1, 0.0, 3.0);
        for step in 0..20 {
            let a = step as f64 * 0.3;
            let pos = [
                Vec3::new(a.cos(), a.sin(), 0.0),
                Vec3::zero(),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(0.8, -0.3, 1.0),
            ];
            let mut f = vec![Vec3::zero(); 4];
            let e = dihedral_forces(t.dihedrals(), &pos, &mut f);
            assert!((0.0..=6.0 + 1e-9).contains(&e), "energy {e} out of bounds");
        }
    }

    #[test]
    fn degenerate_geometries_do_not_panic() {
        let mut t = Topology::new();
        t.add_harmonic_bond(0, 1, 1.0, 10.0);
        t.add_angle(0, 1, 2, 1.0, 5.0);
        t.add_dihedral(0, 1, 2, 3, 1, 0.0, 1.0);
        // Everything coincident / collinear.
        let pos = [Vec3::zero(), Vec3::zero(), Vec3::zero(), Vec3::zero()];
        let mut f = vec![Vec3::zero(); 4];
        let eb = bond_forces(t.bonds(), &pos, &mut f);
        let ea = angle_forces(t.angles(), &pos, &mut f);
        let ed = dihedral_forces(t.dihedrals(), &pos, &mut f);
        assert!(eb.is_finite() && ea.is_finite() && ed.is_finite());
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
