//! External one-body potentials.
//!
//! The pore, membrane and any confining walls act on each particle
//! independently of the others; they enter the force field through the
//! [`ExternalPotential`] trait. `spice-pore` implements it for the
//! α-hemolysin geometry.

use crate::system::SpeciesId;
use crate::vec3::Vec3;
use rayon::prelude::*;

/// A position-dependent one-body potential `U(r, species)`.
///
/// Implementations must be `Send + Sync` so the per-particle loop can be
/// parallelized.
pub trait ExternalPotential: Send + Sync {
    /// Energy (kcal/mol) and force (kcal mol⁻¹ Å⁻¹) on a particle of the
    /// given species at position `p`.
    fn energy_force(&self, p: Vec3, species: SpeciesId) -> (f64, Vec3);

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "external"
    }

    /// Add forces for all particles; returns total energy. The default
    /// implementation parallelizes over particles above 4096 atoms.
    ///
    /// The parallel path computes a fixed partial energy per chunk and
    /// reduces the partials serially in chunk order, so the float sum
    /// associates identically no matter how work was scheduled (the
    /// same deterministic-reduction idiom as the nonbonded kernel).
    fn add_forces(&self, positions: &[Vec3], species: &[SpeciesId], forces: &mut [Vec3]) -> f64 {
        if positions.len() < 4096 {
            let mut e = 0.0;
            for i in 0..positions.len() {
                let (ei, fi) = self.energy_force(positions[i], species[i]);
                e += ei;
                forces[i] += fi;
            }
            e
        } else {
            const CHUNK: usize = 1024;
            let partials: Vec<f64> = forces
                .par_chunks_mut(CHUNK)
                .enumerate()
                .map(|(c, chunk)| {
                    let base = c * CHUNK;
                    let mut e = 0.0;
                    for (k, f) in chunk.iter_mut().enumerate() {
                        let i = base + k;
                        let (ei, fi) = self.energy_force(positions[i], species[i]);
                        e += ei;
                        *f += fi;
                    }
                    e
                })
                .collect();
            partials.iter().sum()
        }
    }
}

/// A harmonic wall confining particles to a slab `z ∈ [z_lo, z_hi]`
/// (flat inside, quadratic outside). Used to keep open-boundary systems
/// bounded and in tests.
#[derive(Debug, Clone, Copy)]
pub struct SlabWall {
    /// Lower z bound (Å).
    pub z_lo: f64,
    /// Upper z bound (Å).
    pub z_hi: f64,
    /// Wall stiffness (kcal mol⁻¹ Å⁻²).
    pub k: f64,
}

impl ExternalPotential for SlabWall {
    fn energy_force(&self, p: Vec3, _species: SpeciesId) -> (f64, Vec3) {
        if p.z < self.z_lo {
            let d = p.z - self.z_lo;
            (self.k * d * d, Vec3::new(0.0, 0.0, -2.0 * self.k * d))
        } else if p.z > self.z_hi {
            let d = p.z - self.z_hi;
            (self.k * d * d, Vec3::new(0.0, 0.0, -2.0 * self.k * d))
        } else {
            (0.0, Vec3::zero())
        }
    }

    fn name(&self) -> &str {
        "slab-wall"
    }
}

/// A harmonic radial wall confining particles to a cylinder ρ ≤ R around
/// the z-axis.
#[derive(Debug, Clone, Copy)]
pub struct CylinderWall {
    /// Cylinder radius (Å).
    pub radius: f64,
    /// Wall stiffness (kcal mol⁻¹ Å⁻²).
    pub k: f64,
}

impl ExternalPotential for CylinderWall {
    fn energy_force(&self, p: Vec3, _species: SpeciesId) -> (f64, Vec3) {
        let rho = p.rho();
        if rho <= self.radius {
            return (0.0, Vec3::zero());
        }
        let d = rho - self.radius;
        let e = self.k * d * d;
        // Gradient points radially outward; force pulls back in.
        let inv = if rho > 0.0 { 1.0 / rho } else { 0.0 };
        let f = Vec3::new(
            -2.0 * self.k * d * p.x * inv,
            -2.0 * self.k * d * p.y * inv,
            0.0,
        );
        (e, f)
    }

    fn name(&self) -> &str {
        "cylinder-wall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_wall_flat_inside() {
        let w = SlabWall {
            z_lo: -5.0,
            z_hi: 5.0,
            k: 10.0,
        };
        let (e, f) = w.energy_force(Vec3::new(0.0, 0.0, 3.0), 0);
        assert_eq!(e, 0.0);
        assert_eq!(f, Vec3::zero());
    }

    #[test]
    fn slab_wall_restores_from_both_sides() {
        let w = SlabWall {
            z_lo: -5.0,
            z_hi: 5.0,
            k: 10.0,
        };
        let (e_hi, f_hi) = w.energy_force(Vec3::new(0.0, 0.0, 6.0), 0);
        assert!((e_hi - 10.0).abs() < 1e-12);
        assert!(f_hi.z < 0.0);
        let (e_lo, f_lo) = w.energy_force(Vec3::new(0.0, 0.0, -7.0), 0);
        assert!((e_lo - 40.0).abs() < 1e-12);
        assert!(f_lo.z > 0.0);
    }

    #[test]
    fn cylinder_wall_radial_restoring() {
        let w = CylinderWall {
            radius: 2.0,
            k: 5.0,
        };
        let (e, f) = w.energy_force(Vec3::new(3.0, 0.0, 1.0), 0);
        assert!((e - 5.0).abs() < 1e-12);
        assert!(f.x < 0.0 && f.y == 0.0 && f.z == 0.0);
        let (e_in, f_in) = w.energy_force(Vec3::new(1.0, 1.0, 0.0), 0);
        assert_eq!(e_in, 0.0);
        assert_eq!(f_in, Vec3::zero());
    }

    #[test]
    fn add_forces_accumulates_energy() {
        let w = SlabWall {
            z_lo: 0.0,
            z_hi: 1.0,
            k: 1.0,
        };
        let pos = vec![Vec3::new(0.0, 0.0, 2.0), Vec3::new(0.0, 0.0, 0.5)];
        let species = vec![0, 0];
        let mut forces = vec![Vec3::zero(); 2];
        let e = w.add_forces(&pos, &species, &mut forces);
        assert!((e - 1.0).abs() < 1e-12);
        assert!(forces[0].z < 0.0);
        assert_eq!(forces[1], Vec3::zero());
    }

    #[test]
    fn wall_force_matches_numeric_gradient() {
        let w = CylinderWall {
            radius: 1.5,
            k: 3.0,
        };
        let p = Vec3::new(1.8, 0.9, 0.4);
        let h = 1e-6;
        let (_, f) = w.energy_force(p, 0);
        for ax in 0..3 {
            let mut pp = p;
            let mut pm = p;
            match ax {
                0 => {
                    pp.x += h;
                    pm.x -= h;
                }
                1 => {
                    pp.y += h;
                    pm.y -= h;
                }
                _ => {
                    pp.z += h;
                    pm.z -= h;
                }
            }
            let num = -(w.energy_force(pp, 0).0 - w.energy_force(pm, 0).0) / (2.0 * h);
            let ana = [f.x, f.y, f.z][ax];
            assert!((num - ana).abs() < 1e-5, "axis {ax}: {num} vs {ana}");
        }
    }
}
