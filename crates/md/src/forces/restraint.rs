//! Harmonic position restraints.
//!
//! The pore scaffold beads are restrained to their crystallographic
//! positions (the paper's protein is effectively rigid on pulling
//! timescales); restraints also anchor reference atoms in tests.

use crate::vec3::Vec3;

/// A harmonic restraint `U = k |r - r₀|²` on one particle, optionally
/// restricted to a subset of axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Restraint {
    /// Restrained particle index.
    pub index: usize,
    /// Anchor position (Å).
    pub anchor: Vec3,
    /// Stiffness (kcal mol⁻¹ Å⁻²).
    pub k: f64,
    /// Per-axis mask: restrain x/y/z only when the flag is set.
    pub axes: [bool; 3],
}

impl Restraint {
    /// Isotropic restraint on all three axes.
    pub fn harmonic(index: usize, anchor: Vec3, k: f64) -> Self {
        Restraint {
            index,
            anchor,
            k,
            axes: [true; 3],
        }
    }

    /// Restraint acting only in the xy-plane (free motion along the pore
    /// axis z) — used to hold the DNA laterally centered during priming.
    pub fn lateral(index: usize, anchor: Vec3, k: f64) -> Self {
        Restraint {
            index,
            anchor,
            k,
            axes: [true, true, false],
        }
    }

    /// Add this restraint's force; returns its energy.
    pub fn add_forces(&self, positions: &[Vec3], forces: &mut [Vec3]) -> f64 {
        let d = positions[self.index] - self.anchor;
        let d = Vec3::new(
            if self.axes[0] { d.x } else { 0.0 },
            if self.axes[1] { d.y } else { 0.0 },
            if self.axes[2] { d.z } else { 0.0 },
        );
        forces[self.index] -= d * (2.0 * self.k);
        self.k * d.norm_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_restraint_pulls_back() {
        let r = Restraint::harmonic(0, Vec3::zero(), 2.0);
        let pos = [Vec3::new(1.0, -2.0, 0.5)];
        let mut f = [Vec3::zero()];
        let e = r.add_forces(&pos, &mut f);
        assert!((e - 2.0 * (1.0 + 4.0 + 0.25)).abs() < 1e-12);
        assert_eq!(f[0], Vec3::new(-4.0, 8.0, -2.0));
    }

    #[test]
    fn lateral_restraint_leaves_z_free() {
        let r = Restraint::lateral(0, Vec3::zero(), 1.0);
        let pos = [Vec3::new(2.0, 0.0, 100.0)];
        let mut f = [Vec3::zero()];
        let e = r.add_forces(&pos, &mut f);
        assert!(
            (e - 4.0).abs() < 1e-12,
            "z displacement must not contribute"
        );
        assert_eq!(f[0].z, 0.0);
        assert_eq!(f[0].x, -4.0);
    }

    #[test]
    fn restraint_at_anchor_is_inert() {
        let r = Restraint::harmonic(1, Vec3::new(1.0, 1.0, 1.0), 10.0);
        let pos = [Vec3::zero(), Vec3::new(1.0, 1.0, 1.0)];
        let mut f = [Vec3::zero(); 2];
        assert_eq!(r.add_forces(&pos, &mut f), 0.0);
        assert_eq!(f[1], Vec3::zero());
    }
}
