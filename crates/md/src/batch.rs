//! Batched SoA ensemble engine: advance many replicas of one system
//! through a single force/integrate loop.
//!
//! The cloned-ensemble path (`spice-smd`) runs R independent
//! [`Simulation`]s that share a topology, force field and starting
//! snapshot, diverging only through per-replica thermostat noise and the
//! pulling bias. Stepping them one at a time re-pays every per-step fixed
//! cost R times and leaves the per-pair arithmetic scalar. This module
//! holds the whole batch in structure-of-arrays layout — for coordinate
//! row `(particle, axis)` the R replica *lanes* are contiguous,
//! `idx = (particle*3 + axis)*R + lane` — so the hot kernels loop over
//! pairs/particles once and sweep lanes in the inner loop, which LLVM
//! auto-vectorizes (AVX2/AVX-512 selected at runtime, like the
//! chunked-scratch reduction idiom in `forces::nonbonded`).
//!
//! # Bit-identity with the cloned path
//!
//! The contract is *bitwise* agreement with `run_ensemble_cloned`, not
//! approximate agreement; `spice-smd` property-tests pin it. Three rules
//! make it hold:
//!
//! 1. **Same expressions.** Lane kernels call the same inlined scalar
//!    functions ([`LjParams::energy_force`],
//!    [`DebyeHuckel::energy_force_pref`], `detmath`, `rng::gauss_from`)
//!    and replicate the BAOAB update's exact parse order. Bonded,
//!    external and restraint terms are evaluated by *calling the scalar
//!    kernels* on per-lane gather/scatter views — zero duplication risk.
//!    LLVM never contracts mul+add to FMA without fast-math, so
//!    vectorized lanes produce the scalar bits.
//! 2. **Masked adds instead of branches.** Where the scalar pair kernel
//!    skips (`r2 == 0` or beyond cutoff), the lane kernel accumulates an
//!    exact `±0.0`. Force accumulators start at `+0.0` and only ever
//!    receive `+=`/`-=`, so they can never become `-0.0` (IEEE round-to-
//!    nearest returns `+0.0` for any exactly-cancelling sum), and adding
//!    `±0.0` to a non-`-0.0` accumulator never changes its bits.
//! 3. **Superset pair list.** All lanes share one tiered pair list built
//!    as the sorted, deduped union of every live lane's cell-list
//!    candidates. By rule 2 a superset is bit-safe: pairs inside the true
//!    cutoff appear in every valid Verlet list (skin invariant) in the
//!    same sorted order, and extra pairs contribute exact zeros. The list
//!    is rebuilt when *any* live lane has moved more than `skin/2` since
//!    the last rebuild — at least as often as any per-replica list would.
//!
//! Replicas that go non-finite ("dead" lanes) keep computing lane-local
//! garbage in the hot kernels (no per-lane branching) but are excluded
//! from rebuild unions, mirroring the scalar engine where NaN
//! displacements never trigger a rebuild.

use crate::forces::nonbonded::{DebyeHuckel, LjParams};
use crate::forces::{angle_forces, bond_forces, dihedral_forces, ForceField};
use crate::neighbor::CellList;
use crate::rng::{gauss_from, gauss_hash};
use crate::sim::Simulation;
use crate::units;
use crate::vec3::Vec3;

/// Per-lane BAOAB thermostat parameters, extracted from each replica's
/// integrator via [`Simulation::langevin_params`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneThermostat {
    /// Target temperature (K).
    pub temperature: f64,
    /// Friction coefficient γ (ps⁻¹).
    pub gamma: f64,
    /// Counter-based noise stream seed (one independent stream per lane).
    pub noise_seed: u64,
}

/// Per-eval bias access for one batch: read lane positions, add lane
/// forces. Handed to the bias callback so the SMD spring can act on every
/// lane inside the batched force evaluation.
pub struct LaneForces<'a> {
    pos: &'a [f64],
    frc: &'a mut [f64],
    n: usize,
    r: usize,
}

impl LaneForces<'_> {
    /// Particles per replica.
    pub fn n_particles(&self) -> usize {
        self.n
    }

    /// Replica lanes in the batch.
    pub fn n_lanes(&self) -> usize {
        self.r
    }

    /// Position of particle `i` in lane `l`.
    #[inline]
    pub fn pos(&self, i: usize, l: usize) -> Vec3 {
        let b = i * 3 * self.r;
        Vec3::new(
            self.pos[b + l],
            self.pos[b + self.r + l],
            self.pos[b + 2 * self.r + l],
        )
    }

    /// z-coordinate of particle `i` in lane `l` (the SMD reaction
    /// coordinate; avoids gathering all three components).
    #[inline]
    pub fn pos_z(&self, i: usize, l: usize) -> f64 {
        self.pos[(i * 3 + 2) * self.r + l]
    }

    /// Add `df` to the z-force on particle `i` in lane `l`.
    #[inline]
    pub fn add_force_z(&mut self, i: usize, l: usize, df: f64) {
        self.frc[(i * 3 + 2) * self.r + l] += df;
    }

    /// Add a force vector to particle `i` in lane `l`.
    #[inline]
    pub fn add_force(&mut self, i: usize, l: usize, f: Vec3) {
        let b = i * 3 * self.r;
        self.frc[b + l] += f.x;
        self.frc[b + self.r + l] += f.y;
        self.frc[b + 2 * self.r + l] += f.z;
    }
}

/// Shared tiered pair state for the whole batch (mirrors
/// `forces::nonbonded::TierList` compiled over the union candidate list).
#[derive(Debug)]
struct BatchPairs {
    lj: LjParams,
    dh: Option<DebyeHuckel>,
    lj_cut2: f64,
    es_cut2: f64,
    /// Candidate-collection radius: `list_cutoff + skin`.
    radius: f64,
    /// Rebuild trigger: squared displacement limit `(skin/2)²`.
    limit2: f64,
    lj_pairs: Vec<(u32, u32)>,
    ljdh_pairs: Vec<(u32, u32)>,
    ljdh_pref: Vec<f64>,
    /// Positions of every lane at the last rebuild (SoA, same layout).
    ref_pos: Vec<f64>,
    built: bool,
    /// Union-candidate scratch, reused across rebuilds.
    candidates: Vec<(u32, u32)>,
}

/// A batch of replicas advanced in lockstep through one vectorized
/// BAOAB/force loop. Construct from a template [`Simulation`] (all lanes
/// start from its exact state) plus per-lane thermostat parameters.
pub struct BatchSim {
    n: usize,
    r: usize,
    dt: f64,
    step: u64,
    /// SoA state, `idx = (particle*3 + axis)*r + lane`.
    pos: Vec<f64>,
    vel: Vec<f64>,
    frc: Vec<f64>,
    inv_m: Vec<f64>,
    masses: Vec<f64>,
    charges: Vec<f64>,
    species: Vec<u32>,
    alive: Vec<bool>,
    /// Per-lane thermostat coefficients (SoA so the O-step sweeps lanes).
    seeds: Vec<u64>,
    c1: Vec<f64>,
    /// OU noise amplitude per `(particle, lane)`, `sigma[i*r + l]` —
    /// `c2·√(kT·m⁻¹)` is a loop constant, so hoisting it from the O-step
    /// to construction drops a sqrt per lane-element while keeping the
    /// scalar path's exact bits (same expression, same inputs).
    sigma: Vec<f64>,
    /// Shared model: topology, external potentials, restraints. The
    /// embedded `NonBonded` evaluator is *not* called — its parameters
    /// were extracted into `nb` at construction.
    ff: ForceField,
    nb: Option<BatchPairs>,
    // Reusable scratch (allocated once; the hot loops must not allocate).
    lane_pos: Vec<Vec3>,
    lane_frc: Vec<Vec3>,
    pair_scratch: Vec<f64>,
    maxd2: Vec<f64>,
    rebuilds: u64,
}

impl BatchSim {
    /// Build a batch of `lanes.len()` replicas, each starting from
    /// `template`'s exact positions/velocities/step. The template's
    /// integrator and bias are discarded; per-lane thermostats come from
    /// `lanes`. Call [`refresh_forces`](Self::refresh_forces) before the
    /// first [`step_once`](Self::step_once) (mirroring how the scalar
    /// driver refreshes on bias installation).
    ///
    /// # Panics
    /// Panics when `lanes` is empty.
    pub fn new(template: Simulation, lanes: &[LaneThermostat]) -> Self {
        assert!(!lanes.is_empty(), "batch needs at least one lane");
        let (system, ff, dt, step) = template.into_parts();
        let n = system.len();
        let r = lanes.len();

        let mut pos = vec![0.0; 3 * n * r];
        let mut vel = vec![0.0; 3 * n * r];
        for i in 0..n {
            let p = system.positions()[i];
            let v = system.velocities()[i];
            let b = i * 3 * r;
            for l in 0..r {
                pos[b + l] = p.x;
                pos[b + r + l] = p.y;
                pos[b + 2 * r + l] = p.z;
                vel[b + l] = v.x;
                vel[b + r + l] = v.y;
                vel[b + 2 * r + l] = v.z;
            }
        }

        // Same expressions the scalar BAOAB step evaluates from (γ, T, dt)
        // every step; they are loop constants, so hoisting them to
        // construction reproduces the same bits.
        let mut seeds = Vec::with_capacity(r);
        let mut c1 = Vec::with_capacity(r);
        let mut c2 = Vec::with_capacity(r);
        let mut kt = Vec::with_capacity(r);
        for t in lanes {
            let c1_l = (-t.gamma * dt).exp();
            seeds.push(t.noise_seed);
            c1.push(c1_l);
            c2.push((1.0 - c1_l * c1_l).sqrt());
            kt.push(units::KB * t.temperature * units::ACCEL);
        }
        let inv_m = system.inv_masses().to_vec();
        let mut sigma = vec![0.0; n * r];
        for i in 0..n {
            let im = inv_m[i];
            for l in 0..r {
                // Exactly the scalar O-step's per-step expression.
                sigma[i * r + l] = c2[l] * (kt[l] * im).sqrt();
            }
        }

        let nb = ff.nonbonded().map(|nb| {
            let lj = nb.lj_params();
            let list_cutoff = nb.list_cutoff();
            let skin = nb.list_skin();
            BatchPairs {
                lj,
                dh: nb.debye(),
                lj_cut2: lj.cutoff * lj.cutoff,
                es_cut2: list_cutoff * list_cutoff,
                radius: list_cutoff + skin,
                limit2: (skin * 0.5) * (skin * 0.5),
                lj_pairs: Vec::new(),
                ljdh_pairs: Vec::new(),
                ljdh_pref: Vec::new(),
                ref_pos: vec![0.0; 3 * n * r],
                built: false,
                candidates: Vec::new(),
            }
        });

        BatchSim {
            n,
            r,
            dt,
            step,
            pos,
            vel,
            frc: vec![0.0; 3 * n * r],
            inv_m,
            masses: system.masses().to_vec(),
            charges: system.charges().to_vec(),
            species: system.species().to_vec(),
            alive: vec![true; r],
            seeds,
            c1,
            sigma,
            ff,
            nb,
            lane_pos: vec![Vec3::zero(); n],
            lane_frc: vec![Vec3::zero(); n],
            pair_scratch: vec![0.0; 3 * r],
            maxd2: vec![0.0; r],
            rebuilds: 0,
        }
    }

    /// Particles per replica.
    pub fn n_particles(&self) -> usize {
        self.n
    }

    /// Replica lanes in the batch.
    pub fn n_lanes(&self) -> usize {
        self.r
    }

    /// Completed step count (shared by all lanes — they run in lockstep).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Simulation time (ps), identical across lanes.
    pub fn time_ps(&self) -> f64 {
        self.step as f64 * self.dt
    }

    /// Time step (ps).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Per-particle masses (amu), shared by all lanes.
    pub fn masses(&self) -> &[f64] {
        &self.masses
    }

    /// Is lane `l` still considered live?
    pub fn lane_alive(&self, l: usize) -> bool {
        self.alive[l]
    }

    /// Any live lanes left?
    pub fn any_alive(&self) -> bool {
        self.alive.iter().any(|&a| a)
    }

    /// Mark lane `l` dead: it stops contributing to neighbor-list
    /// rebuilds. Its state keeps evolving as lane-local garbage (the hot
    /// kernels never branch per lane), exactly like a scalar replica
    /// between blowing up and being detected.
    pub fn mark_dead(&mut self, l: usize) {
        self.alive[l] = false;
    }

    /// True when every coordinate and velocity of lane `l` is finite —
    /// the per-lane analogue of `System::is_finite`.
    pub fn lane_is_finite(&self, l: usize) -> bool {
        let r = self.r;
        for row in 0..3 * self.n {
            if !self.pos[row * r + l].is_finite() || !self.vel[row * r + l].is_finite() {
                return false;
            }
        }
        true
    }

    /// Position of particle `i` in lane `l`.
    pub fn pos(&self, i: usize, l: usize) -> Vec3 {
        let b = i * 3 * self.r;
        Vec3::new(
            self.pos[b + l],
            self.pos[b + self.r + l],
            self.pos[b + 2 * self.r + l],
        )
    }

    /// Velocity of particle `i` in lane `l`.
    pub fn vel(&self, i: usize, l: usize) -> Vec3 {
        let b = i * 3 * self.r;
        Vec3::new(
            self.vel[b + l],
            self.vel[b + self.r + l],
            self.vel[b + 2 * self.r + l],
        )
    }

    /// z-coordinate of particle `i` in lane `l`.
    #[inline]
    pub fn pos_z(&self, i: usize, l: usize) -> f64 {
        self.pos[(i * 3 + 2) * self.r + l]
    }

    /// All positions of lane `l`, in particle order.
    pub fn lane_positions(&self, l: usize) -> Vec<Vec3> {
        (0..self.n).map(|i| self.pos(i, l)).collect()
    }

    /// All velocities of lane `l`, in particle order.
    pub fn lane_velocities(&self, l: usize) -> Vec<Vec3> {
        (0..self.n).map(|i| self.vel(i, l)).collect()
    }

    /// Shared-pair-list rebuilds so far (telemetry/diagnostics).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Compiled `(lj_only, lj_plus_dh)` tier sizes of the shared union
    /// list; zeros without a non-bonded term.
    pub fn tier_sizes(&self) -> (usize, usize) {
        self.nb
            .as_ref()
            .map(|bp| (bp.lj_pairs.len(), bp.ljdh_pairs.len()))
            .unwrap_or((0, 0))
    }

    /// Recompute forces for the current positions at the current time
    /// (force field + bias), like `Simulation::refresh_forces`.
    pub fn refresh_forces(&mut self, bias: &mut dyn FnMut(f64, &mut LaneForces<'_>)) {
        let t = self.time_ps();
        self.eval_forces(t, bias);
    }

    /// Advance every lane by one BAOAB step. The bias callback runs
    /// inside the mid-step force evaluation at the end-of-step time,
    /// exactly like the scalar driver.
    pub fn step_once(&mut self, bias: &mut dyn FnMut(f64, &mut LaneForces<'_>)) {
        let t_next = (self.step + 1) as f64 * self.dt;
        let half_kick = 0.5 * self.dt * units::ACCEL;
        let half_dt = 0.5 * self.dt;
        lanes::baoab_pre(
            self.n,
            self.r,
            self.step,
            half_kick,
            half_dt,
            &mut self.pos,
            &mut self.vel,
            &self.frc,
            &self.inv_m,
            &self.seeds,
            &self.c1,
            &self.sigma,
        );
        self.eval_forces(t_next, bias);
        lanes::baoab_post(
            self.n,
            self.r,
            half_kick,
            &mut self.vel,
            &self.frc,
            &self.inv_m,
        );
        self.step += 1;
    }

    /// Force evaluation across all lanes: zero, bonded (per-lane scalar
    /// kernels on gather/scatter views), shared-list pair tiers (lane-
    /// swept), externals + restraints (per-lane scalar kernels), bias.
    /// Term order matches `ForceField::evaluate` + bias exactly.
    fn eval_forces(&mut self, t_ps: f64, bias: &mut dyn FnMut(f64, &mut LaneForces<'_>)) {
        let Self {
            n,
            r,
            pos,
            frc,
            alive,
            ff,
            nb,
            charges,
            lane_pos,
            lane_frc,
            pair_scratch,
            maxd2,
            rebuilds,
            species,
            ..
        } = self;
        let (n, r) = (*n, *r);

        frc.fill(0.0);

        let topo = ff.topology();
        let has_bonded =
            !(topo.bonds().is_empty() && topo.angles().is_empty() && topo.dihedrals().is_empty());
        if has_bonded {
            // Index form kept: the lane id `l` also feeds the gather/scatter helpers.
            #[allow(clippy::needless_range_loop)]
            for l in 0..r {
                if !alive[l] {
                    continue;
                }
                gather_lane(pos, lane_pos, n, r, l);
                lane_frc.fill(Vec3::zero());
                bond_forces(topo.bonds(), lane_pos, lane_frc);
                angle_forces(topo.angles(), lane_pos, lane_frc);
                dihedral_forces(topo.dihedrals(), lane_pos, lane_frc);
                scatter_lane(frc, lane_frc, n, r, l);
            }
        }

        if let Some(bp) = nb {
            if n > 1 {
                // Rebuild trigger: any live lane moved > skin/2 since the
                // last rebuild (same cadence as the scalar list, which
                // checks on every force evaluation).
                let stale = if bp.built {
                    maxd2.fill(0.0);
                    lanes::max_disp(n, r, pos, &bp.ref_pos, maxd2);
                    maxd2
                        .iter()
                        .zip(alive.iter())
                        .any(|(&d2, &a)| a && d2 > bp.limit2)
                } else {
                    true
                };
                if stale {
                    bp.candidates.clear();
                    // Index form kept: the lane id `l` also feeds the gather/scatter helpers.
                    #[allow(clippy::needless_range_loop)]
                    for l in 0..r {
                        if !alive[l] {
                            continue;
                        }
                        gather_lane(pos, lane_pos, n, r, l);
                        // A lane can go non-finite before the driver's
                        // periodic health check notices; the scalar engine
                        // never rebuilds such a replica (NaN displacements
                        // compare false), so exclude it from the union.
                        if !lane_pos.iter().all(|p| p.is_finite()) {
                            continue;
                        }
                        CellList::bin(lane_pos, bp.radius).collect_pairs(
                            lane_pos,
                            bp.radius,
                            &mut bp.candidates,
                        );
                    }
                    bp.candidates.sort_unstable();
                    bp.candidates.dedup();
                    bp.lj_pairs.clear();
                    bp.ljdh_pairs.clear();
                    bp.ljdh_pref.clear();
                    for &(i, j) in &bp.candidates {
                        let (iu, ju) = (i as usize, j as usize);
                        if topo.is_excluded(iu, ju) {
                            continue;
                        }
                        match bp.dh {
                            Some(dh) if charges[iu] != 0.0 && charges[ju] != 0.0 => {
                                bp.ljdh_pairs.push((i, j));
                                bp.ljdh_pref.push(dh.prefactor(charges[iu], charges[ju]));
                            }
                            _ => bp.lj_pairs.push((i, j)),
                        }
                    }
                    bp.ref_pos.copy_from_slice(pos);
                    bp.built = true;
                    *rebuilds += 1;
                }
                // Tier order matches the scalar serial path: all LJ-only
                // pairs first, then all LJ+DH pairs.
                lanes::lj_tier(&bp.lj_pairs, r, bp.lj, bp.lj_cut2, pos, frc, pair_scratch);
                lanes::ljdh_tier(
                    &bp.ljdh_pairs,
                    &bp.ljdh_pref,
                    r,
                    bp.lj,
                    bp.dh,
                    bp.lj_cut2,
                    bp.es_cut2,
                    pos,
                    frc,
                    pair_scratch,
                );
            }
        }

        if !ff.externals().is_empty() {
            // Index form kept: the lane id `l` also feeds the gather/scatter helpers.
            #[allow(clippy::needless_range_loop)]
            for l in 0..r {
                if !alive[l] {
                    continue;
                }
                gather_lane(pos, lane_pos, n, r, l);
                gather_lane(frc, lane_frc, n, r, l);
                for ext in ff.externals() {
                    ext.add_forces(lane_pos, species, lane_frc);
                }
                scatter_lane(frc, lane_frc, n, r, l);
            }
        }
        // Restraints have a fixed per-particle shape, so they sweep
        // lanes directly instead of going through gather/scatter. Dead
        // lanes are not skipped: their rows are never read again, and a
        // NaN-poisoned row stays NaN under accumulation.
        for rest in ff.restraints() {
            lanes::restraint_tier(
                rest.index * 3 * r,
                r,
                [rest.anchor.x, rest.anchor.y, rest.anchor.z],
                rest.axes,
                2.0 * rest.k,
                pos,
                frc,
            );
        }

        let mut lf = LaneForces { pos, frc, n, r };
        bias(t_ps, &mut lf);
    }
}

impl std::fmt::Debug for BatchSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSim")
            .field("particles", &self.n)
            .field("lanes", &self.r)
            .field("step", &self.step)
            .field("dt_ps", &self.dt)
            .field("rebuilds", &self.rebuilds)
            .finish()
    }
}

/// Copy lane `l` out of the SoA array into an AoS `Vec3` view.
#[inline]
fn gather_lane(soa: &[f64], out: &mut [Vec3], n: usize, r: usize, l: usize) {
    for (i, v) in out.iter_mut().enumerate().take(n) {
        let b = i * 3 * r;
        *v = Vec3::new(soa[b + l], soa[b + r + l], soa[b + 2 * r + l]);
    }
}

/// Copy an AoS `Vec3` view back into lane `l` of the SoA array
/// (overwrite, not add — the gathered view already accumulated).
#[inline]
fn scatter_lane(soa: &mut [f64], lane: &[Vec3], n: usize, r: usize, l: usize) {
    for (i, v) in lane.iter().enumerate().take(n) {
        let b = i * 3 * r;
        soa[b + l] = v.x;
        soa[b + r + l] = v.y;
        soa[b + 2 * r + l] = v.z;
    }
}

/// Name of the runtime-detected SIMD tier the lane kernels dispatch to
/// (`"avx512"`, `"avx2"`, or `"generic"`). All tiers are bit-identical;
/// benches record this so a throughput report can be read against the
/// hardware that produced it.
pub fn simd_tier_name() -> &'static str {
    lanes::tier_name()
}

/// Lane-swept kernels with runtime SIMD dispatch. Each kernel is written
/// once as an `#[inline(always)]` generic body; `#[target_feature]`
/// wrappers let LLVM re-vectorize it for wider ISAs, selected once per
/// process. All tiers produce identical bits: every operation is an
/// IEEE-exact add/mul/div/sqrt and LLVM does not contract to FMA without
/// fast-math.
mod lanes {
    use super::{gauss_from, gauss_hash, DebyeHuckel, LjParams};
    use std::sync::OnceLock;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum SimdTier {
        Generic,
        #[cfg(target_arch = "x86_64")]
        Avx2,
        #[cfg(target_arch = "x86_64")]
        Avx512,
    }

    fn simd_tier() -> SimdTier {
        static TIER: OnceLock<SimdTier> = OnceLock::new();
        *TIER.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512dq")
                    && is_x86_feature_detected!("avx512vl")
                    && is_x86_feature_detected!("avx512bw")
                {
                    return SimdTier::Avx512;
                }
                if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                    return SimdTier::Avx2;
                }
            }
            SimdTier::Generic
        })
    }

    pub(super) fn tier_name() -> &'static str {
        match simd_tier() {
            SimdTier::Generic => "generic",
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Expand one `#[inline(always)]` kernel body into generic/AVX2/
    /// AVX-512 entry points plus the runtime-dispatched public wrapper.
    macro_rules! simd_dispatch {
        ($entry:ident / $imp:ident / $gen:ident / $avx2:ident / $avx512:ident;
         ( $($arg:ident : $ty:ty),* $(,)? )) => {
            #[allow(clippy::too_many_arguments)]
            fn $gen($($arg: $ty),*) {
                $imp($($arg),*)
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $avx2($($arg: $ty),*) {
                $imp($($arg),*)
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512bw")]
            #[allow(clippy::too_many_arguments)]
            unsafe fn $avx512($($arg: $ty),*) {
                $imp($($arg),*)
            }
            #[allow(clippy::too_many_arguments)]
            pub(super) fn $entry($($arg: $ty),*) {
                match simd_tier() {
                    // SAFETY: the dispatched tier was feature-detected at
                    // runtime before being cached.
                    #[cfg(target_arch = "x86_64")]
                    SimdTier::Avx2 => unsafe { $avx2($($arg),*) },
                    #[cfg(target_arch = "x86_64")]
                    SimdTier::Avx512 => unsafe { $avx512($($arg),*) },
                    SimdTier::Generic => $gen($($arg),*),
                }
            }
        };
    }

    /// BAOAB pre-force sub-steps (B, A, O, A) for every lane. Exact
    /// replica of `LangevinBaoab::step`'s per-particle update with the
    /// loop-invariant coefficients precomputed per lane.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn baoab_pre_impl(
        n: usize,
        r: usize,
        step: u64,
        half_kick: f64,
        half_dt: f64,
        pos: &mut [f64],
        vel: &mut [f64],
        frc: &[f64],
        inv_m: &[f64],
        seeds: &[u64],
        c1: &[f64],
        sigma: &[f64],
    ) {
        // Exact-length views of the per-lane tables: the `..r` bound is
        // what lets LLVM elide the bounds checks inside the lane sweep
        // (without it the panic paths block clean vectorization).
        let (seeds, c1) = (&seeds[..r], &c1[..r]);
        // Index form kept: the particle id `i` also derives the SoA row bases.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let s_kick = half_kick * inv_m[i];
            // Per-(particle, lane) OU amplitude, precomputed with the
            // scalar step's exact expression at construction.
            let sig = &sigma[i * r..(i + 1) * r];
            for axis in 0..3usize {
                let row = (i * 3 + axis) * r;
                // One hash per (step, particle, axis), hoisted across
                // lanes; per-lane mixing happens in `gauss_from`.
                let h = gauss_hash(step.wrapping_mul(3).wrapping_add(axis as u64), i as u64);
                let p = &mut pos[row..row + r];
                let v = &mut vel[row..row + r];
                let f = &frc[row..row + r];
                for l in 0..r {
                    // B: half kick.
                    let v1 = v[l] + f[l] * s_kick;
                    // A: half drift.
                    let p1 = p[l] + v1 * half_dt;
                    // O: Ornstein-Uhlenbeck exact update.
                    let v2 = c1[l] * v1 + sig[l] * gauss_from(seeds[l], h);
                    // A: half drift.
                    p[l] = p1 + v2 * half_dt;
                    v[l] = v2;
                }
            }
        }
    }
    simd_dispatch!(baoab_pre / baoab_pre_impl / baoab_pre_gen / baoab_pre_avx2 / baoab_pre_avx512;
        (n: usize, r: usize, step: u64, half_kick: f64, half_dt: f64,
         pos: &mut [f64], vel: &mut [f64], frc: &[f64], inv_m: &[f64],
         seeds: &[u64], c1: &[f64], sigma: &[f64]));

    /// BAOAB final half kick for every lane.
    #[inline(always)]
    fn baoab_post_impl(
        n: usize,
        r: usize,
        half_kick: f64,
        vel: &mut [f64],
        frc: &[f64],
        inv_m: &[f64],
    ) {
        // Index form kept: the particle id `i` also derives the SoA row bases.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let s_kick = half_kick * inv_m[i];
            let base = i * 3 * r;
            let v = &mut vel[base..base + 3 * r];
            let f = &frc[base..base + 3 * r];
            for l in 0..3 * r {
                v[l] += f[l] * s_kick;
            }
        }
    }
    simd_dispatch!(baoab_post / baoab_post_impl / baoab_post_gen / baoab_post_avx2 / baoab_post_avx512;
        (n: usize, r: usize, half_kick: f64, vel: &mut [f64], frc: &[f64], inv_m: &[f64]));

    /// One positional restraint swept across lanes — exactly the scalar
    /// `Restraint::add_forces`, including the per-axis mask: masked axes
    /// still subtract `±0.0 · 2k`, so the lane bits match the scalar
    /// path's zeroed displacement component.
    #[inline(always)]
    fn restraint_impl(
        base: usize,
        r: usize,
        anchor: [f64; 3],
        axes: [bool; 3],
        two_k: f64,
        pos: &[f64],
        frc: &mut [f64],
    ) {
        for axis in 0..3usize {
            let row = base + axis * r;
            let p = &pos[row..row + r];
            let f = &mut frc[row..row + r];
            let (anc, on) = (anchor[axis], axes[axis]);
            for l in 0..r {
                let d = if on { p[l] - anc } else { 0.0 };
                f[l] -= d * two_k;
            }
        }
    }
    simd_dispatch!(restraint_tier / restraint_impl / restraint_gen / restraint_avx2 / restraint_avx512;
        (base: usize, r: usize, anchor: [f64; 3], axes: [bool; 3], two_k: f64,
         pos: &[f64], frc: &mut [f64]));

    /// LJ-only tier swept across lanes. Where the scalar kernel skips
    /// (`r2 == 0` or `r2 > cutoff²`) the lane contributes an exact
    /// `±0.0`, which never changes an accumulator that is not `-0.0`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn lj_tier_impl(
        pairs: &[(u32, u32)],
        r: usize,
        lj: LjParams,
        lj_cut2: f64,
        pos: &[f64],
        frc: &mut [f64],
        scratch: &mut [f64],
    ) {
        let (sx, rest) = scratch.split_at_mut(r);
        let (sy, sz) = rest.split_at_mut(r);
        for &(i, j) in pairs {
            let bi = i as usize * 3 * r;
            let bj = j as usize * 3 * r;
            let pix = &pos[bi..bi + r];
            let piy = &pos[bi + r..bi + 2 * r];
            let piz = &pos[bi + 2 * r..bi + 3 * r];
            let pjx = &pos[bj..bj + r];
            let pjy = &pos[bj + r..bj + 2 * r];
            let pjz = &pos[bj + 2 * r..bj + 3 * r];
            for l in 0..r {
                let dx = pjx[l] - pix[l];
                let dy = pjy[l] - piy[l];
                let dz = pjz[l] - piz[l];
                let r2 = dx * dx + dy * dy + dz * dz;
                // Same inlined expression as the scalar kernel; the unused
                // energy half is dead-code-eliminated. Out-of-range lanes
                // compute speculative garbage that the select masks.
                let (_e, f) = lj.energy_force(r2);
                let fs = if r2 != 0.0 && r2 <= lj_cut2 { f } else { 0.0 };
                sx[l] = dx * fs;
                sy[l] = dy * fs;
                sz[l] = dz * fs;
            }
            accumulate(frc, bj, bi, sx, sy, sz, r);
        }
    }
    simd_dispatch!(lj_tier / lj_tier_impl / lj_tier_gen / lj_tier_avx2 / lj_tier_avx512;
        (pairs: &[(u32, u32)], r: usize, lj: LjParams, lj_cut2: f64,
         pos: &[f64], frc: &mut [f64], scratch: &mut [f64]));

    /// LJ + Debye–Hückel tier swept across lanes. The two cutoff tests
    /// become masked adds onto `f_over_r`, preserving the scalar kernel's
    /// exact add sequence (`0.0 + f_lj`, then `+ f_dh`).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn ljdh_tier_impl(
        pairs: &[(u32, u32)],
        prefs: &[f64],
        r: usize,
        lj: LjParams,
        dh: Option<DebyeHuckel>,
        lj_cut2: f64,
        es_cut2: f64,
        pos: &[f64],
        frc: &mut [f64],
        scratch: &mut [f64],
    ) {
        if pairs.is_empty() {
            return;
        }
        let dh = dh.expect("LJ+DH tier populated without Debye-Huckel enabled");
        let (sx, rest) = scratch.split_at_mut(r);
        let (sy, sz) = rest.split_at_mut(r);
        for (&(i, j), &pref) in pairs.iter().zip(prefs) {
            let bi = i as usize * 3 * r;
            let bj = j as usize * 3 * r;
            let pix = &pos[bi..bi + r];
            let piy = &pos[bi + r..bi + 2 * r];
            let piz = &pos[bi + 2 * r..bi + 3 * r];
            let pjx = &pos[bj..bj + r];
            let pjy = &pos[bj + r..bj + 2 * r];
            let pjz = &pos[bj + 2 * r..bj + 3 * r];
            for l in 0..r {
                let dx = pjx[l] - pix[l];
                let dy = pjy[l] - piy[l];
                let dz = pjz[l] - piz[l];
                let r2 = dx * dx + dy * dy + dz * dz;
                let nz = r2 != 0.0;
                let (_elj, f_lj) = lj.energy_force(r2);
                let (_ec, f_dh) = dh.energy_force_pref(pref, r2);
                let mut f_over_r = 0.0;
                f_over_r += if nz && r2 <= lj_cut2 { f_lj } else { 0.0 };
                f_over_r += if nz && r2 <= es_cut2 { f_dh } else { 0.0 };
                sx[l] = dx * f_over_r;
                sy[l] = dy * f_over_r;
                sz[l] = dz * f_over_r;
            }
            accumulate(frc, bj, bi, sx, sy, sz, r);
        }
    }
    simd_dispatch!(ljdh_tier / ljdh_tier_impl / ljdh_tier_gen / ljdh_tier_avx2 / ljdh_tier_avx512;
        (pairs: &[(u32, u32)], prefs: &[f64], r: usize, lj: LjParams,
         dh: Option<DebyeHuckel>, lj_cut2: f64, es_cut2: f64,
         pos: &[f64], frc: &mut [f64], scratch: &mut [f64]));

    /// `frc[j] += fv; frc[i] -= fv` across lanes (`forces[j] += fv;
    /// forces[i] -= fv` in the scalar kernel — i ≠ j, so splitting the
    /// two add streams preserves per-accumulator order).
    #[inline(always)]
    fn accumulate(
        frc: &mut [f64],
        bj: usize,
        bi: usize,
        sx: &[f64],
        sy: &[f64],
        sz: &[f64],
        r: usize,
    ) {
        {
            let fj = &mut frc[bj..bj + 3 * r];
            for l in 0..r {
                fj[l] += sx[l];
                fj[r + l] += sy[l];
                fj[2 * r + l] += sz[l];
            }
        }
        let fi = &mut frc[bi..bi + 3 * r];
        for l in 0..r {
            fi[l] -= sx[l];
            fi[r + l] -= sy[l];
            fi[2 * r + l] -= sz[l];
        }
    }

    /// Per-lane max squared displacement against the rebuild reference.
    /// `f64::max` drops NaN, so a lane that went non-finite never
    /// triggers a rebuild (matching the scalar list, where NaN
    /// comparisons are false).
    #[inline(always)]
    fn max_disp_impl(n: usize, r: usize, pos: &[f64], refp: &[f64], maxd2: &mut [f64]) {
        for i in 0..n {
            let b = i * 3 * r;
            let px = &pos[b..b + r];
            let py = &pos[b + r..b + 2 * r];
            let pz = &pos[b + 2 * r..b + 3 * r];
            let rx = &refp[b..b + r];
            let ry = &refp[b + r..b + 2 * r];
            let rz = &refp[b + 2 * r..b + 3 * r];
            for l in 0..r {
                let dx = px[l] - rx[l];
                let dy = py[l] - ry[l];
                let dz = pz[l] - rz[l];
                let d2 = dx * dx + dy * dy + dz * dz;
                maxd2[l] = maxd2[l].max(d2);
            }
        }
    }
    simd_dispatch!(max_disp / max_disp_impl / max_disp_gen / max_disp_avx2 / max_disp_avx512;
        (n: usize, r: usize, pos: &[f64], refp: &[f64], maxd2: &mut [f64]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::nonbonded::NonBonded;
    use crate::forces::Restraint;
    use crate::integrate::LangevinBaoab;
    use crate::sim::BiasForce;
    use crate::system::System;
    use crate::topology::Topology;

    /// A moving z-spring on one particle — the scalar side of the bias
    /// bit-identity tests.
    struct ZSpring {
        k: f64,
        z0: f64,
        v: f64,
    }
    impl BiasForce for ZSpring {
        fn apply(&self, p: &[Vec3], forces: &mut [Vec3], t: f64) -> f64 {
            let dz = p[0].z - (self.z0 + self.v * t);
            forces[0].z += -2.0 * self.k * dz;
            0.0
        }
    }

    fn restrained_parts() -> (System, ForceField) {
        let mut sys = System::new();
        sys.add_particle(Vec3::new(0.3, -0.2, 0.5), 12.0, 0.0, 0);
        sys.add_particle(Vec3::new(-0.4, 0.6, -0.1), 30.0, 0.0, 0);
        let ff = ForceField::new(Topology::new())
            .with_restraint(Restraint::harmonic(0, Vec3::zero(), 1.5))
            .with_restraint(Restraint::lateral(1, Vec3::new(0.0, 0.5, 0.0), 2.0));
        (sys, ff)
    }

    /// Bonded chain with alternating charges and WCA+DH non-bonded terms:
    /// exercises every kernel family plus shared-list rebuilds.
    fn chain_parts(n: usize) -> (System, ForceField) {
        let mut sys = System::new();
        let mut topo = Topology::new();
        for i in 0..n {
            let f = i as f64;
            sys.add_particle(
                Vec3::new(
                    f * 1.1 + 0.05 * (f * 0.7).sin(),
                    0.2 * (f * 1.3).cos(),
                    0.1 * f,
                ),
                15.0,
                if i % 3 == 0 { 0.0 } else { -1.0 },
                0,
            );
            if i > 0 {
                topo.add_harmonic_bond(i - 1, i, 1.1, 40.0);
            }
            if i > 1 {
                topo.add_angle(i - 2, i - 1, i, 2.6, 6.0);
            }
        }
        let ff = ForceField::new(topo)
            .with_nonbonded(
                NonBonded::new(LjParams::wca(1.0, 0.8), 4.0, 0.4).with_debye_huckel(3.0, 80.0),
            )
            .with_restraint(Restraint::harmonic(0, sys.positions()[0], 5.0));
        (sys, ff)
    }

    fn lane_set(seeds: &[u64]) -> Vec<LaneThermostat> {
        seeds
            .iter()
            .enumerate()
            .map(|(k, &s)| LaneThermostat {
                temperature: 300.0 + 20.0 * k as f64,
                gamma: 5.0,
                noise_seed: s,
            })
            .collect()
    }

    /// Run lane `l`'s scalar twin: same system/ff factory, per-lane
    /// thermostat, same bias, same step count.
    fn scalar_run(
        parts: impl Fn() -> (System, ForceField),
        t: &LaneThermostat,
        bias: Option<(f64, f64, f64)>,
        steps: u64,
        dt: f64,
    ) -> (Vec<Vec3>, Vec<Vec3>) {
        let (sys, ff) = parts();
        let mut sim = Simulation::new(
            sys,
            ff,
            Box::new(LangevinBaoab::new(t.temperature, t.gamma, t.noise_seed)),
            dt,
        );
        if let Some((k, z0, v)) = bias {
            sim.set_bias(Some(Box::new(ZSpring { k, z0, v })));
        }
        for _ in 0..steps {
            sim.step_once();
        }
        (
            sim.system().positions().to_vec(),
            sim.system().velocities().to_vec(),
        )
    }

    fn batch_run(
        parts: impl Fn() -> (System, ForceField),
        lanes: &[LaneThermostat],
        bias: Option<(f64, f64, f64)>,
        steps: u64,
        dt: f64,
    ) -> BatchSim {
        let (sys, ff) = parts();
        let template = Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 5.0, 0)), dt);
        let mut bsim = BatchSim::new(template, lanes);
        let mut bias_fn = move |t: f64, lf: &mut LaneForces<'_>| {
            if let Some((k, z0, v)) = bias {
                for l in 0..lf.n_lanes() {
                    let dz = lf.pos_z(0, l) - (z0 + v * t);
                    lf.add_force_z(0, l, -2.0 * k * dz);
                }
            }
        };
        bsim.refresh_forces(&mut bias_fn);
        for _ in 0..steps {
            bsim.step_once(&mut bias_fn);
        }
        bsim
    }

    fn assert_lane_matches(
        bsim: &BatchSim,
        l: usize,
        scalar_pos: &[Vec3],
        scalar_vel: &[Vec3],
        label: &str,
    ) {
        assert_eq!(
            bsim.lane_positions(l),
            scalar_pos,
            "{label}: lane {l} positions"
        );
        assert_eq!(
            bsim.lane_velocities(l),
            scalar_vel,
            "{label}: lane {l} velocities"
        );
    }

    #[test]
    fn restrained_lanes_match_scalar_bitwise() {
        let lanes = lane_set(&[11, 22, 33]);
        let bsim = batch_run(restrained_parts, &lanes, None, 120, 0.01);
        for (l, t) in lanes.iter().enumerate() {
            let (p, v) = scalar_run(restrained_parts, t, None, 120, 0.01);
            assert_lane_matches(&bsim, l, &p, &v, "restrained");
        }
    }

    #[test]
    fn chain_nonbonded_lanes_match_scalar_bitwise() {
        let lanes = lane_set(&[5, 17, 29, 41]);
        let bsim = batch_run(|| chain_parts(10), &lanes, None, 250, 0.005);
        assert!(
            bsim.rebuild_count() >= 1,
            "test must exercise shared-list rebuilds"
        );
        for (l, t) in lanes.iter().enumerate() {
            let (p, v) = scalar_run(|| chain_parts(10), t, None, 250, 0.005);
            assert_lane_matches(&bsim, l, &p, &v, "chain");
        }
    }

    #[test]
    fn biased_lanes_match_scalar_bitwise() {
        let bias = Some((3.0, 0.5, 2.0));
        let lanes = lane_set(&[7, 13]);
        let bsim = batch_run(|| chain_parts(6), &lanes, bias, 150, 0.01);
        for (l, t) in lanes.iter().enumerate() {
            let (p, v) = scalar_run(|| chain_parts(6), t, bias, 150, 0.01);
            assert_lane_matches(&bsim, l, &p, &v, "biased");
        }
    }

    #[test]
    fn lane_trajectory_independent_of_batch_size() {
        let solo = lane_set(&[22]);
        let trio = lane_set(&[11, 22, 33]);
        // `lane_set` varies temperature by slot; pin lane 1's params to
        // the solo lane's so only batch size differs.
        let trio = vec![trio[0], solo[0], trio[2]];
        let b1 = batch_run(|| chain_parts(8), &solo, None, 100, 0.01);
        let b3 = batch_run(|| chain_parts(8), &trio, None, 100, 0.01);
        assert_eq!(b1.lane_positions(0), b3.lane_positions(1));
        assert_eq!(b1.lane_velocities(0), b3.lane_velocities(1));
    }

    #[test]
    fn dead_lane_does_not_perturb_live_lanes() {
        let lanes = lane_set(&[3, 9, 27]);
        let (sys, ff) = chain_parts(8);
        let template = Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 5.0, 0)), 0.01);
        let mut bsim = BatchSim::new(template, &lanes);
        let mut no_bias = |_t: f64, _lf: &mut LaneForces<'_>| {};
        bsim.refresh_forces(&mut no_bias);
        for _ in 0..40 {
            bsim.step_once(&mut no_bias);
        }
        // Poison lane 1 mid-run the way a blowup would and mark it dead.
        let r = bsim.n_lanes();
        for row in 0..3 * bsim.n_particles() {
            bsim.pos[row * r + 1] = f64::NAN;
            bsim.vel[row * r + 1] = f64::NAN;
        }
        bsim.mark_dead(1);
        assert!(!bsim.lane_is_finite(1));
        for _ in 0..160 {
            bsim.step_once(&mut no_bias);
        }
        for (l, t) in lanes.iter().enumerate() {
            if l == 1 {
                continue;
            }
            let (p, v) = scalar_run(|| chain_parts(8), t, None, 200, 0.01);
            assert_lane_matches(&bsim, l, &p, &v, "dead-lane");
        }
    }

    #[test]
    fn lane_is_finite_tracks_state() {
        let lanes = lane_set(&[1, 2]);
        let bsim = batch_run(restrained_parts, &lanes, None, 10, 0.01);
        assert!(bsim.lane_is_finite(0) && bsim.lane_is_finite(1));
        assert!(bsim.any_alive());
    }
}
