//! Bonded topology: bonds, angles, dihedrals, non-bonded exclusions, and
//! named atom groups.
//!
//! Groups are how higher layers address subsets of atoms — the paper's
//! "SMD atoms" (the pulled C3' atom set) and the restrained pore scaffold
//! are both groups.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A 2-body bonded term: either harmonic or FENE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bond {
    /// First particle index.
    pub i: usize,
    /// Second particle index.
    pub j: usize,
    /// Equilibrium length (Å) for harmonic bonds; maximum extension R0 for
    /// FENE bonds.
    pub r0: f64,
    /// Force constant (kcal mol⁻¹ Å⁻²).
    pub k: f64,
    /// Bond functional form.
    pub kind: BondKind,
}

/// Functional form of a bond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BondKind {
    /// `U = k (r - r0)²` (note: no 1/2; NAMD/CHARMM convention).
    Harmonic,
    /// FENE: `U = -0.5 k R0² ln(1 - (r/R0)²)` — finitely extensible,
    /// standard for coarse-grained polymers.
    Fene,
}

/// A 3-body harmonic angle term `U = k (θ - θ0)²`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Angle {
    /// First end particle.
    pub i: usize,
    /// Central particle.
    pub j: usize,
    /// Second end particle.
    pub k_idx: usize,
    /// Equilibrium angle (radians).
    pub theta0: f64,
    /// Force constant (kcal mol⁻¹ rad⁻²).
    pub k: f64,
}

/// A 4-body cosine dihedral `U = k (1 + cos(n φ - δ))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dihedral {
    /// Particle indices along the chain.
    pub i: usize,
    /// Second particle.
    pub j: usize,
    /// Third particle.
    pub k_idx: usize,
    /// Fourth particle.
    pub l: usize,
    /// Multiplicity.
    pub n: u32,
    /// Phase (radians).
    pub delta: f64,
    /// Force constant (kcal/mol).
    pub k: f64,
}

/// Bonded topology + exclusions + named groups for a [`crate::System`].
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Topology {
    bonds: Vec<Bond>,
    angles: Vec<Angle>,
    dihedrals: Vec<Dihedral>,
    /// Canonicalized (min, max) excluded pairs, sorted for binary search.
    exclusions: Vec<(usize, usize)>,
    exclusions_sorted: bool,
    groups: BTreeMap<String, Vec<usize>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a harmonic bond and exclude the pair from non-bonded terms.
    pub fn add_harmonic_bond(&mut self, i: usize, j: usize, r0: f64, k: f64) {
        self.bonds.push(Bond {
            i,
            j,
            r0,
            k,
            kind: BondKind::Harmonic,
        });
        self.add_exclusion(i, j);
    }

    /// Add a FENE bond. Unlike harmonic bonds, the pair is NOT excluded
    /// from non-bonded terms: FENE is purely attractive and relies on the
    /// WCA excluded volume to set the bond length (the Kremer–Grest
    /// convention for coarse-grained polymers).
    pub fn add_fene_bond(&mut self, i: usize, j: usize, r_max: f64, k: f64) {
        self.bonds.push(Bond {
            i,
            j,
            r0: r_max,
            k,
            kind: BondKind::Fene,
        });
    }

    /// Add a harmonic angle `i–j–k` and exclude the 1–3 pair.
    pub fn add_angle(&mut self, i: usize, j: usize, k_idx: usize, theta0: f64, k: f64) {
        self.angles.push(Angle {
            i,
            j,
            k_idx,
            theta0,
            k,
        });
        self.add_exclusion(i, k_idx);
    }

    /// Add a harmonic angle WITHOUT the 1–3 exclusion — coarse-grained
    /// chains keep excluded volume between second neighbours so weak
    /// bending stiffness cannot let the chain self-overlap.
    pub fn add_angle_keep_nonbonded(
        &mut self,
        i: usize,
        j: usize,
        k_idx: usize,
        theta0: f64,
        k: f64,
    ) {
        self.angles.push(Angle {
            i,
            j,
            k_idx,
            theta0,
            k,
        });
    }

    /// Add a cosine dihedral `i–j–k–l` (no automatic 1–4 exclusion;
    /// coarse-grained models usually keep 1–4 non-bonded interactions).
    #[allow(clippy::too_many_arguments)]
    pub fn add_dihedral(
        &mut self,
        i: usize,
        j: usize,
        k_idx: usize,
        l: usize,
        n: u32,
        delta: f64,
        k: f64,
    ) {
        self.dihedrals.push(Dihedral {
            i,
            j,
            k_idx,
            l,
            n,
            delta,
            k,
        });
    }

    /// Exclude a pair from non-bonded interactions.
    pub fn add_exclusion(&mut self, i: usize, j: usize) {
        let p = (i.min(j), i.max(j));
        self.exclusions.push(p);
        self.exclusions_sorted = false;
    }

    /// Finalize exclusions for fast lookup (idempotent; called by force
    /// fields before evaluation).
    pub fn finalize(&mut self) {
        if !self.exclusions_sorted {
            self.exclusions.sort_unstable();
            self.exclusions.dedup();
            self.exclusions_sorted = true;
        }
    }

    /// True when the (i, j) pair is excluded from non-bonded terms.
    /// Requires [`Topology::finalize`] to have run for O(log n) lookup;
    /// falls back to a linear scan otherwise.
    pub fn is_excluded(&self, i: usize, j: usize) -> bool {
        let p = (i.min(j), i.max(j));
        if self.exclusions_sorted {
            self.exclusions.binary_search(&p).is_ok()
        } else {
            self.exclusions.contains(&p)
        }
    }

    /// All bonds.
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// All angles.
    pub fn angles(&self) -> &[Angle] {
        &self.angles
    }

    /// All dihedrals.
    pub fn dihedrals(&self) -> &[Dihedral] {
        &self.dihedrals
    }

    /// Number of exclusions after dedup (finalizes lazily for accuracy).
    pub fn exclusion_count(&self) -> usize {
        if self.exclusions_sorted {
            self.exclusions.len()
        } else {
            let mut v = self.exclusions.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        }
    }

    /// Define (or replace) a named atom group.
    pub fn set_group<S: Into<String>>(&mut self, name: S, indices: Vec<usize>) {
        self.groups.insert(name.into(), indices);
    }

    /// Look up a named atom group.
    pub fn group(&self, name: &str) -> Result<&[usize], crate::MdError> {
        self.groups
            .get(name)
            .map(|v| v.as_slice())
            .ok_or_else(|| crate::MdError::UnknownGroup(name.to_string()))
    }

    /// Iterate over group names.
    pub fn group_names(&self) -> impl Iterator<Item = &str> {
        self.groups.keys().map(|s| s.as_str())
    }

    /// Build a linear chain of harmonic bonds over `indices`, with optional
    /// angle stiffness along the chain. Used by the ssDNA builder.
    pub fn add_chain(
        &mut self,
        indices: &[usize],
        r0: f64,
        k_bond: f64,
        angle_params: Option<(f64, f64)>,
    ) {
        for w in indices.windows(2) {
            self.add_harmonic_bond(w[0], w[1], r0, k_bond);
        }
        if let Some((theta0, k_angle)) = angle_params {
            for w in indices.windows(3) {
                self.add_angle(w[0], w[1], w[2], theta0, k_angle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonds_create_exclusions() {
        let mut t = Topology::new();
        t.add_harmonic_bond(0, 1, 1.5, 100.0);
        t.finalize();
        assert!(t.is_excluded(0, 1));
        assert!(t.is_excluded(1, 0), "exclusions are symmetric");
        assert!(!t.is_excluded(0, 2));
    }

    #[test]
    fn angles_exclude_one_three() {
        let mut t = Topology::new();
        t.add_angle(0, 1, 2, 1.9, 5.0);
        t.finalize();
        assert!(t.is_excluded(0, 2));
        assert!(
            !t.is_excluded(0, 1),
            "1-2 exclusion comes from the bond, not the angle"
        );
    }

    #[test]
    fn duplicate_exclusions_dedup() {
        let mut t = Topology::new();
        t.add_exclusion(3, 7);
        t.add_exclusion(7, 3);
        t.add_exclusion(3, 7);
        assert_eq!(t.exclusion_count(), 1);
    }

    #[test]
    fn unsorted_lookup_still_works() {
        let mut t = Topology::new();
        t.add_exclusion(2, 9);
        assert!(t.is_excluded(9, 2));
    }

    #[test]
    fn groups_roundtrip() {
        let mut t = Topology::new();
        t.set_group("smd", vec![4, 5, 6]);
        assert_eq!(t.group("smd").unwrap(), &[4, 5, 6]);
        assert!(t.group("nope").is_err());
        assert_eq!(t.group_names().collect::<Vec<_>>(), vec!["smd"]);
    }

    #[test]
    fn chain_builder_wires_bonds_and_angles() {
        let mut t = Topology::new();
        t.add_chain(&[0, 1, 2, 3], 2.0, 50.0, Some((std::f64::consts::PI, 3.0)));
        assert_eq!(t.bonds().len(), 3);
        assert_eq!(t.angles().len(), 2);
        t.finalize();
        assert!(t.is_excluded(0, 2), "1-3 along chain excluded");
        assert!(!t.is_excluded(0, 3), "1-4 along chain NOT excluded");
    }

    #[test]
    fn fene_bond_kind() {
        let mut t = Topology::new();
        t.add_fene_bond(0, 1, 3.0, 10.0);
        assert_eq!(t.bonds()[0].kind, BondKind::Fene);
    }
}
