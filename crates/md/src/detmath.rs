//! Deterministic transcendental kernels for hot simulation paths.
//!
//! `ln`, `cos`, and `exp` from the platform libm are correctly rounded (or
//! nearly so) but come with two costs this engine cannot pay:
//!
//! 1. **Platform dependence.** glibc, musl, and macOS libm disagree in the
//!    last ulp, so a trajectory digest computed on one platform need not
//!    reproduce on another. Every other operation in the engine (`+`, `-`,
//!    `*`, `/`, `sqrt`) is exactly specified by IEEE 754 and reproduces
//!    everywhere.
//! 2. **No vectorization.** A libm call in a replica-lane loop forces the
//!    whole loop scalar. The batched ensemble engine (`crate::batch`)
//!    sweeps 64 replica lanes per pair/particle and lives or dies on the
//!    compiler auto-vectorizing those sweeps.
//!
//! The kernels here use only IEEE-exact operations (add, sub, mul, div,
//! sqrt, floor) plus integer bit manipulation, and are branchless. The
//! same Rust function therefore produces bit-identical results whether the
//! compiler evaluates it in a scalar context (the per-replica cloned path)
//! or an 8-wide AVX-512 lane sweep (the batched path) — LLVM never
//! contracts separate `mul`/`add` into a fused FMA without explicit
//! fast-math flags, and none are used in this workspace.
//!
//! Accuracy is a few parts in 1e11 — far below thermostat noise and the
//! statistical error bars of any observable in this codebase, but NOT a
//! drop-in ulp-for-ulp replacement for libm: switching a call site changes
//! trajectories the way changing a seed does.

/// Mantissa bits of sqrt(2), used to fold the significand into
/// [1/√2, √2] so the ln series converges fast.
const SQRT2_MANT: u64 = 0x000f_ffff_ffff_ffff & f64::to_bits(std::f64::consts::SQRT_2);

const LN2: f64 = std::f64::consts::LN_2;
const LOG2E: f64 = std::f64::consts::LOG2_E;

/// Natural log of a finite positive normal `x`.
///
/// Exponent/mantissa split (integer ops), then the atanh series
/// `ln m = 2s(1 + s²/3 + s⁴/5 + …)` with `s = (m-1)/(m+1)`, |s| ≤ 0.1716.
/// Max relative error ≈ 5e-11. Branchless; subnormals, zero, negatives,
/// and non-finite inputs return garbage rather than panicking (callers in
/// this crate only pass uniforms from (0, 1)).
#[inline(always)]
pub fn det_ln(x: f64) -> f64 {
    let bits = x.to_bits();
    let mant = bits & 0x000f_ffff_ffff_ffff;
    // If the significand is above sqrt(2), halve it and bump the exponent:
    // branchless via an integer flag folded into the exponent fields.
    let ge = (mant > SQRT2_MANT) as u64;
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023 + ge as i64;
    let m = f64::from_bits(mant | ((1023 - ge) << 52));
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let p = 1.0 / 7.0 + s2 * (1.0 / 9.0 + s2 * (1.0 / 11.0));
    let p = 1.0 + s2 * (1.0 / 3.0 + s2 * (1.0 / 5.0 + s2 * p));
    2.0 * s * p + e as f64 * LN2
}

/// cos(2π·u) for `u` in roughly (-2⁵², 2⁵²).
///
/// Periodicity folds the argument to v ∈ [-1/2, 1/2) exactly (the fold is
/// pure floating subtraction of an integer, lossless for |u| < 2⁵²), then
/// one even Taylor polynomial of cos(2πv) through t¹⁸ covers the whole
/// fold — no quadrant logic, no branches. Max absolute error ≈ 4e-9.
#[inline(always)]
pub fn det_cos2pi(u: f64) -> f64 {
    let v = u - (u + 0.5).floor();
    let t = v * (2.0 * std::f64::consts::PI);
    let y = t * t;
    let c = 1.0 / 20_922_789_888_000.0 + y * (-1.0 / 6_402_373_705_728_000.0);
    let c = 1.0 / 479_001_600.0 + y * (-1.0 / 87_178_291_200.0 + y * c);
    let c = 1.0 / 40_320.0 + y * (-1.0 / 3_628_800.0 + y * c);
    1.0 + y * (-0.5 + y * (1.0 / 24.0 + y * (-1.0 / 720.0 + y * c)))
}

/// exp(x) for finite `x`; intended domain is the Debye–Hückel screening
/// exponent, x ∈ [-50, 0].
///
/// Reduction x = k·ln2 + r with k from an exact `floor` and a two-word
/// ln2 so r carries no cancellation error, Taylor of exp(r) on
/// |r| ≤ 0.35 through r⁹, then an exponent-field scale by 2ᵏ built with
/// integer ops. Max relative error ≈ 8e-12 in the intended domain. Out of
/// domain the exponent clamp keeps the result finite-garbage instead of
/// UB — batched kernels evaluate speculatively past the cutoff and mask
/// the result away, so garbage is acceptable but faults are not.
#[inline(always)]
pub fn det_exp(x: f64) -> f64 {
    // ln2 split into a 32-bit-exact head and a tail, so k*LN2_HI is exact.
    // Digits kept as published (fdlibm's split); the parsed f64 is what matters.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f64 = 6.931_471_803_691_238_3e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    let kf = (x * LOG2E + 0.5).floor();
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    let p = 1.0 / 40_320.0 + r * (1.0 / 362_880.0);
    let p = 1.0 / 720.0 + r * (1.0 / 5_040.0 + r * p);
    let p = 1.0 / 24.0 + r * (1.0 / 120.0 + r * p);
    let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * p)));
    // 2^k via the exponent field; clamp keeps the bit pattern valid for
    // far-out-of-domain speculative lanes.
    let ki = (kf as i64).clamp(-1022, 1023);
    p * f64::from_bits(((1023 + ki) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_stats::rng::splitmix64;

    fn uniforms(n: u64) -> impl Iterator<Item = f64> {
        (1..=n).map(|i| ((splitmix64(i) >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0))
    }

    #[test]
    fn ln_matches_libm_to_budget() {
        let mut max_rel = 0.0f64;
        for u in uniforms(100_000) {
            // Spread over many binades, the way Box–Muller sees it.
            for &x in &[u, u * 1e-9, u * 1e9, 1.0 + u] {
                let rel = (det_ln(x) - x.ln()).abs() / x.ln().abs().max(1e-12);
                max_rel = max_rel.max(rel);
            }
        }
        assert!(max_rel < 1e-9, "ln rel err {max_rel:e}");
    }

    #[test]
    fn ln_exact_at_powers_of_two() {
        // The series is exact at m = 1, so ln(2^k) must be k*ln2 exactly.
        for k in -40i32..=40 {
            let x = (2f64).powi(k);
            assert_eq!(det_ln(x), k as f64 * LN2, "k = {k}");
        }
    }

    #[test]
    fn cos2pi_matches_libm_to_budget() {
        let mut max_abs = 0.0f64;
        for u in uniforms(100_000) {
            for &x in &[u, -u, u + 17.0, u * 1e4] {
                let abs = (det_cos2pi(x) - (2.0 * std::f64::consts::PI * x).cos()).abs();
                max_abs = max_abs.max(abs);
            }
        }
        assert!(max_abs < 1e-8, "cos2pi abs err {max_abs:e}");
    }

    #[test]
    fn cos2pi_symmetry_and_landmarks() {
        assert_eq!(det_cos2pi(0.0), 1.0);
        // Even function up to fold-boundary rounding (u + 0.5 can round
        // across an integer near |v| = 1/2, where the polynomial is flat).
        for u in uniforms(1_000) {
            assert!((det_cos2pi(u) - det_cos2pi(-u)).abs() < 1e-9);
        }
        assert!((det_cos2pi(0.5) + 1.0).abs() < 1e-8);
        assert!(det_cos2pi(0.25).abs() < 1e-8);
    }

    #[test]
    fn exp_matches_libm_in_screening_domain() {
        let mut max_rel = 0.0f64;
        for u in uniforms(100_000) {
            let x = -50.0 * u;
            let rel = (det_exp(x) - x.exp()).abs() / x.exp();
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 1e-10, "exp rel err {max_rel:e}");
        assert_eq!(det_exp(0.0), 1.0);
    }

    #[test]
    fn exp_out_of_domain_is_finite_garbage_not_a_fault() {
        // Speculative lanes feed huge negative arguments; any finite f64
        // (even a wrong one) is acceptable, a panic or NaN is not.
        for &x in &[-1e3, -1e6, -7e2] {
            let v = det_exp(x);
            assert!(v.is_finite(), "det_exp({x}) = {v}");
        }
    }
}
