//! Unit system: Å (length), ps (time), amu (mass), kcal/mol (energy).
//!
//! This is the "AKMA-like" unit system of CHARMM/NAMD, which the paper's
//! simulations used. The paper quotes the SMD spring constant κ in pN/Å
//! and pulling velocity v in Å/ns; conversions live here so experiment
//! code can speak the paper's units directly.

/// Boltzmann constant, kcal mol⁻¹ K⁻¹.
pub const KB: f64 = 1.987_204_1e-3;

/// Reference simulation temperature used throughout SPICE (K).
pub const T_REF: f64 = 300.0;

/// kT at 300 K, kcal/mol.
pub const KT_300: f64 = KB * T_REF;

/// Force conversion: 1 kcal mol⁻¹ Å⁻¹ expressed in pN.
///
/// 1 kcal/mol = 6.9477×10⁻²¹ J per molecule; divided by 1 Å = 10⁻¹⁰ m
/// gives 6.9477×10⁻¹¹ N = 69.477 pN.
pub const PN_PER_KCALMOL_A: f64 = 69.477;

/// Acceleration conversion: (kcal mol⁻¹ Å⁻¹)/amu expressed in Å ps⁻².
///
/// Standard MD factor: 1 kcal mol⁻¹ Å⁻¹ amu⁻¹ = 4.184×10⁻⁴ Å fs⁻²
/// = 418.4 Å ps⁻².
pub const ACCEL: f64 = 418.4;

/// Kinetic-energy conversion: amu Å² ps⁻² expressed in kcal/mol
/// (the inverse of [`ACCEL`]).
pub const KE: f64 = 1.0 / ACCEL;

/// Convert a spring constant from the paper's pN/Å to kcal mol⁻¹ Å⁻².
#[inline]
pub fn spring_pn_per_a_to_kcal(k_pn: f64) -> f64 {
    k_pn / PN_PER_KCALMOL_A
}

/// Convert a spring constant from kcal mol⁻¹ Å⁻² to pN/Å.
#[inline]
pub fn spring_kcal_to_pn_per_a(k_kcal: f64) -> f64 {
    k_kcal * PN_PER_KCALMOL_A
}

/// Convert a velocity from the paper's Å/ns to engine Å/ps.
#[inline]
pub fn velocity_a_per_ns_to_a_per_ps(v: f64) -> f64 {
    v * 1e-3
}

/// Convert a force from kcal mol⁻¹ Å⁻¹ to pN.
#[inline]
pub fn force_kcal_to_pn(f: f64) -> f64 {
    f * PN_PER_KCALMOL_A
}

/// Convert an energy from kcal/mol to units of kT at temperature `t_kelvin`.
#[inline]
pub fn kcal_to_kt(e: f64, t_kelvin: f64) -> f64 {
    e / (KB * t_kelvin)
}

/// Thermal velocity scale √(kT/m) in Å/ps for mass `m` (amu) at
/// temperature `t` (K).
#[inline]
pub fn thermal_velocity(m: f64, t: f64) -> f64 {
    (KB * t * ACCEL / m).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kt_at_300k() {
        assert!((KT_300 - 0.59616).abs() < 1e-4);
    }

    #[test]
    fn paper_spring_constants_convert() {
        // κ = 100 pN/Å ≈ 1.439 kcal/mol/Å² (§IV-B optimum).
        let k = spring_pn_per_a_to_kcal(100.0);
        assert!((k - 1.4393).abs() < 1e-3, "got {k}");
        assert!((spring_kcal_to_pn_per_a(k) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_velocities_convert() {
        // v = 12.5 Å/ns = 0.0125 Å/ps (§IV-C optimum).
        assert!((velocity_a_per_ns_to_a_per_ps(12.5) - 0.0125).abs() < 1e-15);
    }

    #[test]
    fn accel_and_ke_are_inverse() {
        assert!((ACCEL * KE - 1.0).abs() < 1e-15);
    }

    #[test]
    fn thermal_velocity_scale() {
        // A 100 amu bead at 300 K: sqrt(0.596*418.4/100) ≈ 1.58 Å/ps.
        let v = thermal_velocity(100.0, 300.0);
        assert!((v - 1.579).abs() < 0.01, "got {v}");
    }

    #[test]
    fn energy_in_kt() {
        assert!((kcal_to_kt(KT_300, 300.0) - 1.0).abs() < 1e-12);
    }
}
