//! Velocity-rescaling thermostats for equilibration.
//!
//! Production NVT sampling uses the Langevin integrator; these simple
//! thermostats are used only to bring a freshly built system to the target
//! temperature quickly (the "minimize + heat" stage of system prep).

use crate::system::System;

/// Hard velocity rescale to exactly the target temperature.
#[derive(Debug, Clone, Copy)]
pub struct VelocityRescale {
    /// Target temperature (K).
    pub target: f64,
}

impl VelocityRescale {
    /// Rescale velocities so the instantaneous temperature equals the
    /// target. No-op for a system at 0 K (nothing to scale).
    pub fn apply(&self, system: &mut System) {
        let t = system.temperature();
        if t <= 0.0 {
            return;
        }
        let s = (self.target / t).sqrt();
        for v in system.velocities_mut() {
            *v *= s;
        }
    }
}

/// Berendsen weak-coupling thermostat: relaxes T towards the target with
/// time constant τ.
#[derive(Debug, Clone, Copy)]
pub struct Berendsen {
    /// Target temperature (K).
    pub target: f64,
    /// Coupling time constant τ (ps).
    pub tau: f64,
}

impl Berendsen {
    /// Apply one coupling step of length `dt` (ps).
    pub fn apply(&self, system: &mut System, dt: f64) {
        let t = system.temperature();
        if t <= 0.0 {
            return;
        }
        let lambda2 = 1.0 + dt / self.tau * (self.target / t - 1.0);
        let s = lambda2.max(0.0).sqrt();
        for v in system.velocities_mut() {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    fn hot_system() -> System {
        let mut s = System::new();
        for i in 0..50 {
            s.add_particle(Vec3::new(i as f64, 0.0, 0.0), 10.0, 0.0, 0);
            s.velocities_mut()[i] = Vec3::new(10.0, -6.0, 8.0);
        }
        s
    }

    #[test]
    fn rescale_hits_target_exactly() {
        let mut s = hot_system();
        VelocityRescale { target: 300.0 }.apply(&mut s);
        assert!((s.temperature() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn rescale_noop_at_zero_kelvin() {
        let mut s = System::new();
        s.add_particle(Vec3::zero(), 1.0, 0.0, 0);
        VelocityRescale { target: 300.0 }.apply(&mut s);
        assert_eq!(s.temperature(), 0.0);
    }

    #[test]
    fn berendsen_relaxes_monotonically() {
        let mut s = hot_system();
        let t0 = s.temperature();
        assert!(t0 > 300.0);
        let th = Berendsen {
            target: 300.0,
            tau: 1.0,
        };
        let mut prev = t0;
        for _ in 0..100 {
            th.apply(&mut s, 0.1);
            let t = s.temperature();
            assert!(t <= prev + 1e-9, "temperature must decay: {prev} -> {t}");
            prev = t;
        }
        assert!((prev - 300.0).abs() < 5.0, "final T {prev}");
    }

    #[test]
    fn berendsen_heats_cold_system() {
        let mut s = hot_system();
        VelocityRescale { target: 50.0 }.apply(&mut s);
        let th = Berendsen {
            target: 300.0,
            tau: 0.5,
        };
        for _ in 0..200 {
            th.apply(&mut s, 0.1);
        }
        assert!((s.temperature() - 300.0).abs() < 5.0);
    }
}
