//! Property test pinning `BatchSim` lane trajectories to independent
//! scalar `Simulation`s: for any noise-seed base, step count, and
//! replica count in {1, 3, 64}, every lane's final positions *and*
//! velocities must match its scalar twin bitwise. The fixture is a
//! bonded, charged chain with WCA + Debye–Hückel non-bonded terms, so
//! the shared tiered pair list, union rebuilds, and every kernel family
//! are all on the comparison path.

use proptest::prelude::*;
use spice_md::batch::{BatchSim, LaneForces, LaneThermostat};
use spice_md::forces::nonbonded::{LjParams, NonBonded};
use spice_md::forces::Restraint;
use spice_md::integrate::LangevinBaoab;
use spice_md::{ForceField, Simulation, System, Topology, Vec3};

const DT: f64 = 0.01;

fn chain_parts() -> (System, ForceField) {
    let mut sys = System::new();
    let mut topo = Topology::new();
    for i in 0..5usize {
        let f = i as f64;
        sys.add_particle(
            Vec3::new(
                f * 1.1 + 0.05 * (f * 0.7).sin(),
                0.2 * (f * 1.3).cos(),
                0.1 * f,
            ),
            15.0,
            if i % 2 == 0 { 0.0 } else { -1.0 },
            0,
        );
        if i > 0 {
            topo.add_harmonic_bond(i - 1, i, 1.1, 40.0);
        }
        if i > 1 {
            topo.add_angle(i - 2, i - 1, i, 2.6, 6.0);
        }
    }
    let anchor = sys.positions()[0];
    let ff = ForceField::new(topo)
        .with_nonbonded(
            NonBonded::new(LjParams::wca(1.0, 0.8), 4.0, 0.4).with_debye_huckel(3.0, 80.0),
        )
        .with_restraint(Restraint::harmonic(0, anchor, 5.0));
    (sys, ff)
}

fn lane_thermostat(base: u64, l: usize) -> LaneThermostat {
    LaneThermostat {
        // Spread temperatures so lanes exercise distinct c1/c2/kT rows.
        temperature: 290.0 + 7.0 * (l % 6) as f64,
        gamma: 5.0,
        noise_seed: base
            .wrapping_add(l as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

fn scalar_final(t: &LaneThermostat, steps: u64) -> (Vec<Vec3>, Vec<Vec3>) {
    let (sys, ff) = chain_parts();
    let mut sim = Simulation::new(
        sys,
        ff,
        Box::new(LangevinBaoab::new(t.temperature, t.gamma, t.noise_seed)),
        DT,
    );
    for _ in 0..steps {
        sim.step_once();
    }
    (
        sim.system().positions().to_vec(),
        sim.system().velocities().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// ISSUE 10 gate (position half): lane trajectories are bitwise
    /// equal to scalar replays across replica counts {1, 3, 64}.
    #[test]
    fn lanes_match_scalar_bitwise(base in 1u64..u32::MAX as u64, steps in 60u64..140) {
        for &n in &[1usize, 3, 64] {
            let lanes: Vec<LaneThermostat> = (0..n).map(|l| lane_thermostat(base, l)).collect();
            let (sys, ff) = chain_parts();
            let template =
                Simulation::new(sys, ff, Box::new(LangevinBaoab::new(300.0, 5.0, 0)), DT);
            let mut bsim = BatchSim::new(template, &lanes);
            let mut no_bias = |_t: f64, _lf: &mut LaneForces<'_>| {};
            bsim.refresh_forces(&mut no_bias);
            for _ in 0..steps {
                bsim.step_once(&mut no_bias);
            }
            // Scalar replays are expensive at n = 64; spot-check the
            // first, an interior, and the last lane there, all lanes
            // otherwise.
            let check: Vec<usize> = if n > 8 { vec![0, n / 2, n - 1] } else { (0..n).collect() };
            for &l in &check {
                let (pos, vel) = scalar_final(&lanes[l], steps);
                prop_assert_eq!(bsim.lane_positions(l), pos, "n={} lane {} positions", n, l);
                prop_assert_eq!(bsim.lane_velocities(l), vel, "n={} lane {} velocities", n, l);
            }
        }
    }
}
