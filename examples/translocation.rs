//! Fig. 1 + Fig. 3: the built system and the translocation stretching
//! analysis — the strand stretches where the pore is narrowest.
//!
//! ```sh
//! cargo run --release --example translocation
//! ```

use spice::core::config::Scale;
use spice::core::experiments::{fig1_system, fig3_translocation};

fn main() {
    println!("{}", fig1_system::run(Scale::Test, 20050512).render());
    println!(
        "{}",
        fig3_translocation::run(Scale::Test, 20050512).render()
    );
}
