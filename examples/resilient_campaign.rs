//! Resilience smoke run: replay the SC05 outage scenario under the three
//! fault-handling policies and print the T-resil report.
//!
//! ```sh
//! cargo run --release --example resilient_campaign [master_seed]
//! ```

use spice_core::experiments::resilience;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(123);
    let report = resilience::run(seed);
    println!("{}", report.render());
}
