//! Fig. 4 reproduction: the full (κ, v) sweep with statistical/systematic
//! error analysis and optimal-parameter selection (§IV).
//!
//! ```sh
//! cargo run --release --example parameter_sweep            # Test scale
//! cargo run --release --example parameter_sweep -- bench   # Bench scale
//! ```

use spice::core::config::Scale;
use spice::core::experiments::fig4_pmf;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("bench") => Scale::Bench,
        Some("paper") => Scale::Paper,
        _ => Scale::Test,
    };
    eprintln!("running the Fig. 4 sweep at {scale:?} scale (12 cells + reference) …");
    let report = fig4_pmf::run(scale, 20050512);
    println!("{}", report.render());
}
