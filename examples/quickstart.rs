//! Quickstart: build the pore + ssDNA system, run one steered pull, and
//! estimate the free-energy profile with Jarzynski's equality.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spice::jarzynski::pmf::{Estimator, PmfCurve};
use spice::md::units::KT_300;
use spice::pore::build::PoreSystemBuilder;
use spice::smd::{run_ensemble, PullProtocol};
use spice::stats::rng::SeedSequence;

fn main() {
    // 1. The system: α-hemolysin-like pore, membrane, implicit 1 M KCl,
    //    and a 12-base ssDNA with its lead bead below the constriction.
    let build = || PoreSystemBuilder::new().dna_start_z(46.0).build();
    println!("system: {:?}", build());

    // 2. The protocol: the paper's optimal spring (κ = 100 pN/Å) at a
    //    laptop-friendly pulling speed over a 4 Å sub-trajectory.
    let protocol = PullProtocol {
        kappa_pn_per_a: 100.0,
        v_a_per_ns: 200.0,
        pull_distance: 4.0,
        dt_ps: 0.01,
        equilibration_steps: 500,
        sample_stride: 20,
    };

    // 3. An ensemble of independent realizations (rayon-parallel — the
    //    in-process analogue of the paper's grid campaign).
    let n = 12;
    println!("running {n} SMD realizations …");
    let trajectories: Vec<_> = run_ensemble(
        |seed| build().into_simulation(0.01, seed),
        &protocol,
        n,
        SeedSequence::new(2005),
    )
    .into_iter()
    .filter_map(Result::ok)
    .collect();
    println!("completed {} realizations", trajectories.len());
    for (i, t) in trajectories.iter().enumerate().take(4) {
        println!(
            "  realization {i}: final work = {:.2} kcal/mol",
            t.final_work()
        );
    }

    // 4. Jarzynski: non-equilibrium work → equilibrium free energy.
    let pmf = PmfCurve::estimate(&trajectories, 4.0, 9, KT_300, Estimator::Jarzynski);
    let mw = PmfCurve::estimate(&trajectories, 4.0, 9, KT_300, Estimator::MeanWork);
    println!("\n  s (Å)    Φ_JE (kcal/mol)   ⟨W⟩ (kcal/mol)");
    for (p, w) in pmf.points.iter().zip(&mw.points) {
        println!(
            "  {:5.2}    {:>10.3}       {:>10.3}",
            p.guide_disp, p.phi, w.phi
        );
    }
    println!(
        "\nJensen check: Φ_JE ≤ ⟨W⟩ everywhere: {}",
        pmf.points
            .iter()
            .zip(&mw.points)
            .all(|(a, b)| a.phi <= b.phi + 1e-9)
    );
}
