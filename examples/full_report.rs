//! Regenerate every paper artifact in one run — the EXPERIMENTS.md
//! record.
//!
//! ```sh
//! cargo run --release --example full_report            # Test scale
//! cargo run --release --example full_report -- bench   # Bench scale
//! ```

use spice::core::config::Scale;
use spice::core::experiments;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("bench") => Scale::Bench,
        Some("paper") => Scale::Paper,
        _ => Scale::Test,
    };
    eprintln!("regenerating all 12 experiments at {scale:?} scale …");
    for report in experiments::run_all(scale, 20050512) {
        println!("{}", report.render());
    }
}
