//! Regenerate every paper artifact in one run — the EXPERIMENTS.md
//! record.
//!
//! ```sh
//! cargo run --release --example full_report            # Test scale
//! cargo run --release --example full_report -- bench   # Bench scale
//! ```

use spice::core::config::Scale;
use spice::core::experiments;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("bench") => Scale::Bench,
        Some("paper") => Scale::Paper,
        _ => Scale::Test,
    };
    eprintln!("regenerating all 12 experiments at {scale:?} scale …");
    for report in experiments::run_all(scale, 20050512) {
        println!("{}", report.render());
    }

    // Pair-kernel work accounting for the standard system (the raw
    // numbers behind the BENCH_md_engine.json throughput figures).
    let mut sim = spice::core::pipeline::pore_simulation(scale, 1);
    sim.run(500, &mut []).expect("counter probe run");
    let c = sim.kernel_counters();
    println!("## Kernel counters (standard pore system, 500 steps)\n");
    println!("- neighbor rebuilds: {}", c.neighbor_rebuilds);
    println!("- kernel invocations: {}", c.kernel_invocations);
    println!("- pairs evaluated: {}", c.pairs_evaluated);
    println!("- pairs/invocation: {:.1}", c.pairs_per_invocation());
    println!("- invocations/rebuild: {:.1}", c.invocations_per_rebuild());
}
