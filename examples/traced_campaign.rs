//! Traced campaign: one SMD-JE sweep cell plus the T-resil
//! checkpoint+failover campaign, run under a live telemetry handle.
//! Prints the aggregated span tree, writes the JSONL event stream and a
//! Chrome trace (load `traced_campaign_chrome.json` in `ui.perfetto.dev`
//! or `chrome://tracing`), and proves on the spot that instrumentation
//! never perturbs results: the traced runs are compared bit-for-bit
//! against untraced reruns.
//!
//! ```sh
//! cargo run --release --example traced_campaign [master_seed]
//! ```

use spice_core::config::Scale;
use spice_core::experiments::resilience::sc05_campaign;
use spice_core::pipeline::{run_cell, run_cell_traced};
use spice_gridsim::metrics::resilience_summary_traced;
use spice_gridsim::network::{Path, QosProfile};
use spice_gridsim::trace::failure_listing_traced;
use spice_gridsim::{run_resilient, run_resilient_traced, ResiliencePolicy};
use spice_stats::rng::SeedSequence;
use spice_steering::{simulate_session_traced, ImdConfig};
use spice_telemetry::Telemetry;

fn main() {
    let master_seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(123);
    let telemetry = Telemetry::enabled();

    // ---- SMD-JE: one sweep cell at the paper's selected optimum ------
    let (kappa, v) = (100.0, 12.5);
    let seeds = SeedSequence::new(master_seed);
    let cell = run_cell_traced(Scale::Test, kappa, v, seeds, &telemetry, 0);
    println!(
        "cell (κ={kappa} pN/Å, v={v} Å/ns): {} realizations, coverage {:.2}, σ_stat {:.3}",
        cell.n_realizations, cell.coverage, cell.sigma_stat_raw
    );

    // ---- T-resil: checkpoint+failover under the SC05 outage ----------
    let campaign = sc05_campaign(master_seed);
    let policy = ResiliencePolicy::checkpoint_failover();
    let resil = run_resilient_traced(&campaign, &policy, &telemetry);
    let listing = failure_listing_traced(&resil, &campaign.federation, &telemetry);
    let (goodput, badput, ..) = resilience_summary_traced(&resil, &telemetry);
    println!(
        "T-resil ckpt+failover: makespan {:.1} d, goodput {goodput:.0} CPU-h, \
         badput {badput:.0} CPU-h, {} failures",
        resil.result.makespan_hours / 24.0,
        resil.failures.len()
    );
    println!("\nfailure log (first lines):");
    for line in listing.lines().take(6) {
        println!("{line}");
    }

    // ---- T-imd: steered sessions, lightpath vs commodity IP ----------
    // Identical load over both profiles; the exchange-cadence instants
    // land on `("steering.session", 0)` (lightpath) and `(.., 1)`
    // (commodity), where `spice-trace stalls` separates the two.
    let imd_cfg = ImdConfig {
        seed: master_seed,
        ..ImdConfig::default()
    };
    for (key, profile) in [
        (0u64, QosProfile::TransAtlanticLightpath),
        (1u64, QosProfile::TransAtlanticCommodity),
    ] {
        let net = Path::new(vec![profile.link()]);
        let stats = simulate_session_traced(&imd_cfg, &net, &net, &telemetry, key);
        println!(
            "T-imd {:?}: slowdown {:.2}x, {} retransmits over {} exchanges",
            profile,
            1.0 + stats.stall_ms / stats.compute_ms,
            stats.retransmits,
            stats.exchanges
        );
    }

    // ---- Determinism check: traced == untraced, bit for bit ----------
    let cell_plain = run_cell(Scale::Test, kappa, v, SeedSequence::new(master_seed));
    let works: Vec<f64> = cell.trajectories.iter().map(|t| t.final_work()).collect();
    let works_plain: Vec<f64> = cell_plain
        .trajectories
        .iter()
        .map(|t| t.final_work())
        .collect();
    assert_eq!(works, works_plain, "telemetry perturbed the SMD ensemble");
    let resil_plain = run_resilient(&campaign, &policy);
    assert_eq!(resil, resil_plain, "telemetry perturbed the DES campaign");
    println!("\ndeterminism: traced runs bit-identical to untraced reruns ✓");

    // ---- Exports ------------------------------------------------------
    println!("\n{}", telemetry.summary_tree());
    std::fs::write("traced_campaign.jsonl", telemetry.jsonl())
        .expect("write traced_campaign.jsonl");
    std::fs::write("traced_campaign_chrome.json", telemetry.chrome_trace())
        .expect("write traced_campaign_chrome.json");
    println!("wrote traced_campaign.jsonl and traced_campaign_chrome.json");
}
