//! Interactive molecular dynamics through the steering framework
//! (Fig. 2, §II–III): live haptic steering of the strand, checkpoint &
//! clone, and the network-QoS dependence of the coupled loop.
//!
//! ```sh
//! cargo run --release --example interactive_imd
//! ```

use spice::core::config::Scale;
use spice::core::experiments::imd_qos;
use spice::core::pipeline::pore_simulation;
use spice::steering::service::GridService;
use spice::steering::{HapticDevice, SteeringClient, SteeringHook, Visualizer};

fn main() {
    // --- A live steering session, all four Fig. 2 components.
    let service = GridService::shared();
    let mut sim = pore_simulation(Scale::Test, 42);
    let lead = sim.force_field().topology().group("dna").expect("dna")[0];
    let mut hook = SteeringHook::attach(service.clone(), 10, vec![lead]);
    let client = SteeringClient::attach(service.clone(), hook.component_id());
    let mut vis = Visualizer::attach(service.clone(), hook.component_id())
        .with_haptic(HapticDevice::phantom());

    println!("== live steering session ==");
    client.set_param("note", 1.0);
    client.checkpoint("before-drag");
    let z0 = sim.system().positions()[lead].z;
    for burst in 0..30 {
        sim.run(10, &mut [&mut hook]).expect("steered burst");
        let hand = z0 + 0.3 * (burst as f64 + 1.0);
        while vis.steer_with_haptic(&[lead], hand).is_some() {}
    }
    let device = vis.haptic.as_ref().expect("haptic");
    println!("  frames emitted:   {}", hook.frames_emitted());
    println!("  forces applied:   {}", hook.forces_applied());
    println!(
        "  peak force felt:  {:.0} pN",
        device.max_observed_force_pn()
    );
    println!(
        "  lead bead moved:  {:.2} Å (from {:.1})",
        sim.system().positions()[lead].z - z0,
        z0
    );

    // --- Checkpoint & clone (§III): branch an independent replica.
    let mut replica = pore_simulation(Scale::Test, 4242);
    client
        .clone_into("before-drag", &mut replica)
        .expect("clone from checkpoint");
    replica.run(100, &mut []).expect("replica run");
    println!(
        "  cloned replica diverged: {}",
        replica.system().positions()[lead].z != sim.system().positions()[lead].z
    );

    // --- The QoS study (T-imd): lightpath vs commodity network.
    println!();
    println!("{}", imd_qos::run(Scale::Test, 42).render());
}
