//! Durable campaign drill: run the SC05 outage workload under the
//! crash-safe engine, kill it on purpose, restore, and prove the
//! survivor is bit-identical to an uninterrupted run.
//!
//! ```sh
//! # Uninterrupted reference digest (no disk involved):
//! cargo run --release --example durable_campaign -- reference
//!
//! # Kill the campaign after N events (checkpointing as it goes);
//! # re-invoking resumes from the newest snapshot before dying again:
//! cargo run --release --example durable_campaign -- crash /tmp/drill 300
//! cargo run --release --example durable_campaign -- crash /tmp/drill 700
//!
//! # Restore and finish; prints the same digest format as `reference`:
//! cargo run --release --example durable_campaign -- resume /tmp/drill
//! ```
//!
//! CI runs exactly this sequence and asserts the two digests match —
//! the crash drill from the paper's outage story, mechanized.

use spice::gridsim::campaign::Campaign;
use spice::gridsim::des::DispatchPolicy;
use spice::gridsim::resilience::{
    run_resilient_with_dispatch_traced, ResiliencePolicy, ResilientResult,
};
use spice::gridsim::trace::failure_listing;
use spice::gridsim::{run_resilient_durable, CrashPlan, DurabilityError, DurableConfig};
use spice::telemetry::Telemetry;
use std::process::ExitCode;

const SEED: u64 = 2005;
const EVERY_EVENTS: u64 = 64;

fn workload() -> (Campaign, ResiliencePolicy, DispatchPolicy) {
    (
        Campaign::sc05_outage_phase(SEED),
        ResiliencePolicy::checkpoint_failover(),
        DispatchPolicy::EarliestCompletion,
    )
}

/// FNV-1a over everything an operator would compare between runs: the
/// serialized records, the rendered failure listing, and the telemetry
/// event stream. Bit-identity of the digest ⇒ bit-identity of all three.
fn digest(campaign: &Campaign, result: &ResilientResult, telemetry: &Telemetry) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(serde_json::to_string(result)
        .expect("result serializes")
        .as_bytes());
    eat(failure_listing(result, &campaign.federation).as_bytes());
    eat(telemetry.jsonl().as_bytes());
    h
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (campaign, policy, dispatch) = workload();
    match args.first().map(String::as_str) {
        Some("reference") => {
            let telemetry = Telemetry::enabled();
            let result =
                run_resilient_with_dispatch_traced(&campaign, &policy, dispatch, &telemetry);
            println!(
                "reference: {} records, {} failures",
                result.result.records.len(),
                result.failures.len()
            );
            println!("digest {:016x}", digest(&campaign, &result, &telemetry));
            ExitCode::SUCCESS
        }
        Some("crash") if args.len() == 3 => {
            let kill: u64 = args[2].parse().expect("kill event count");
            let cfg = DurableConfig {
                every_events: EVERY_EVENTS,
                crash: CrashPlan::KillAfterEvents(kill),
                ..DurableConfig::new(&args[1])
            };
            // The telemetry handle dies with this incarnation; the
            // snapshot carries everything the survivor needs.
            match run_resilient_durable(&campaign, &policy, dispatch, &Telemetry::enabled(), &cfg) {
                Err(DurabilityError::InjectedCrash { after_events }) => {
                    println!("killed as planned after {after_events} events");
                    ExitCode::SUCCESS
                }
                Ok(_) => {
                    eprintln!("campaign finished before event {kill}; nothing was killed");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("unexpected durability error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("resume") if args.len() == 2 => {
            let telemetry = Telemetry::enabled();
            let cfg = DurableConfig {
                every_events: EVERY_EVENTS,
                ..DurableConfig::new(&args[1])
            };
            match run_resilient_durable(&campaign, &policy, dispatch, &telemetry, &cfg) {
                Ok(out) => {
                    match out.recovery.resumed_from {
                        Some(generation) => println!(
                            "resumed from generation {generation} ({} events already replayed)",
                            out.recovery.resumed_events
                        ),
                        None => println!("no snapshot found; ran from the beginning"),
                    }
                    for (generation, why) in &out.recovery.skipped {
                        println!("  skipped generation {generation}: {why}");
                    }
                    println!(
                        "finished: {} records, {} failures, {} snapshots written",
                        out.result.result.records.len(),
                        out.result.failures.len(),
                        out.recovery.snapshots_written
                    );
                    println!("digest {:016x}", digest(&campaign, &out.result, &telemetry));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("recovery failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: durable_campaign reference | crash <dir> <kill_events> | resume <dir>"
            );
            ExitCode::FAILURE
        }
    }
}
