//! The production batch phase on the federated US–UK grid (§III, Fig. 5):
//! 72 simulations, ≈75,000 CPU-hours — under a week on the federation,
//! much longer on any single site; plus the §V-C-4 security-breach
//! scenario and the §V-C-3 reservation workflow.
//!
//! ```sh
//! cargo run --release --example federated_campaign
//! ```

use spice::core::experiments::{campaign, reservations};
use spice::gridsim::campaign::Campaign;
use spice::gridsim::federation::Federation;
use spice::gridsim::trace::gantt;

fn main() {
    println!("{}", campaign::run(20050512).render());
    println!("{}", reservations::run(20050512).render());

    // The at-a-glance view: who ran what, when.
    let c = Campaign::paper_batch_phase(20050512);
    let r = c.run();
    println!("== campaign Gantt (jobs running per site over time) ==");
    println!("{}", gantt(&r, &c.federation, 72));

    // How much does each additional site buy? (the "availability of
    // computational resources is the only constraint" picture of §VI)
    println!("== makespan vs federation size ==");
    let fed = Federation::paper_us_uk();
    let site_sets: Vec<Vec<u32>> = vec![
        vec![0],
        vec![0, 1],
        vec![0, 1, 2],
        vec![0, 1, 2, 3],
        vec![0, 1, 2, 3, 4],
        vec![0, 1, 2, 3, 4, 5],
    ];
    for keep in site_sets {
        let mut c = Campaign::paper_batch_phase(7);
        c.federation = fed.restricted(&keep);
        let r = c.run();
        let names: Vec<&str> = keep.iter().map(|&id| fed.site(id).name.as_str()).collect();
        println!(
            "  {:<44} {:>6.1} days ({:>5.0} CPU-h wasted waiting)",
            names.join("+"),
            r.makespan_days(),
            r.records
                .iter()
                .map(|j| j.wait() * j.procs as f64)
                .sum::<f64>()
        );
    }
}
