//! Offline stand-in for `crossbeam`. The workspace declares the
//! dependency but does not use any of its items, so this crate exists
//! only to satisfy dependency resolution.
