//! Offline stand-in for `criterion`: the macro/type surface the bench
//! targets use, backed by a crude wall-clock timer. Reports mean time per
//! iteration to stdout; no statistics, no HTML reports.

use std::fmt::Display;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    // Opaque enough for a stub: read the value through a volatile pointer.
    unsafe {
        let ret = std::ptr::read_volatile(&x);
        std::mem::forget(x);
        ret
    }
}

pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed.as_millis() >= 10 || iters >= 1 << 20 {
                self.last_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 2;
        }
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b, input);
        report(&label, b.last_ns);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher { last_ns: 0.0 };
    f(&mut b);
    report(label, b.last_ns);
}

fn report(label: &str, ns: f64) {
    if ns >= 1e9 {
        println!("{label:<60} {:>10.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{label:<60} {:>10.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{label:<60} {:>10.3} us/iter", ns / 1e3);
    } else {
        println!("{label:<60} {ns:>10.1} ns/iter");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { last_ns: 0.0 };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.last_ns > 0.0);
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("id", 3), &3u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("top", |b| b.iter(|| black_box(2u32).pow(10)));
    }
}
