//! Offline stand-in for `serde_json`: renders the stub serde [`Value`]
//! tree to JSON text and parses it back. Floats are printed with Rust's
//! shortest-roundtrip formatting, so `float_roundtrip` semantics hold by
//! construction; non-finite floats serialize as `null` (as in real
//! serde_json).

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Into::into)
}

/// Deserialize a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader.read_to_string(&mut s)?;
    from_str(&s)
}

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is shortest-roundtrip and always keeps a ".0" or
                // exponent, so the value re-parses as a float.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::new)?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::new)
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::U64(u)),
                Err(_) => text.parse::<f64>().map(Value::F64).map_err(Error::new),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        let x: f64 = from_str("1.5").unwrap();
        assert_eq!(x, 1.5);
        let y: f64 = from_str("3").unwrap();
        assert_eq!(y, 3.0);
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-8, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back, "roundtrip of {x} via {s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        let back: Vec<Vec<u64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn nan_becomes_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<f64>("1.5 x").is_err());
    }
}
