//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives with
//! parking_lot's panic-free-looking API (`lock()` returns the guard
//! directly; poisoning is treated as an unrecoverable bug).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("poisoned Mutex")
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("poisoned Mutex")
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("poisoned Mutex")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("poisoned RwLock")
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("poisoned RwLock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
