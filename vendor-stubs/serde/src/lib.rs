//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, plus impls for the std types that appear in derived fields.
//!
//! The data model is a simple JSON-like [`Value`] tree; `serde_json`
//! (the sibling stub) renders it to / parses it from JSON text. The wire
//! format matches serde_json's defaults for the shapes used here
//! (struct -> object, unit variant -> string, data variant -> single-key
//! object), so files written by the real stack remain readable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value; `Value::Null` for a missing key
    /// (which lets `Option` fields deserialize as `None`).
    pub fn get_field<'a>(&'a self, key: &str) -> Result<&'a Value, Error> {
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null)),
            other => Err(Error::custom(format!(
                "expected map with field '{key}', got {other:?}"
            ))),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(u) => <$t>::try_from(*u).map_err(Error::custom),
                    Value::I64(i) => <$t>::try_from(*i).map_err(Error::custom),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    // Non-finite floats serialize as null (as in serde_json).
                    Value::Null => Ok(<$t>::NAN),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

/// Map keys must render as strings for the JSON wire format.
pub trait MapKey: Sized {
    /// Key to string.
    fn key_to_string(&self) -> String;
    /// Key from string.
    fn key_from_str(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn key_to_string(&self) -> String {
        self.clone()
    }
    fn key_from_str(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn key_to_string(&self) -> String {
                self.to_string()
            }
            fn key_from_str(s: &str) -> Result<Self, Error> {
                s.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_int_key!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.key_to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.key_to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_value(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?
                            )?,
                        )+);
                        Ok(out)
                    }
                    other => type_err("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let back: Vec<(usize, usize)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let m: BTreeMap<String, Vec<usize>> =
            [("a".to_string(), vec![1, 2])].into_iter().collect();
        let back: BTreeMap<String, Vec<usize>> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<f64>.to_value(), Value::Null);
        let x: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(x, None);
        let y: Option<f64> = Deserialize::from_value(&Value::F64(2.0)).unwrap();
        assert_eq!(y, Some(2.0));
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get_field("b").unwrap(), &Value::Null);
    }
}
