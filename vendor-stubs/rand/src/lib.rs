//! Offline stand-in for `rand` covering the surface the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen::<f64>()`, and
//! `Rng::gen_range(0..n)`. Backed by splitmix64 — deterministic, not the
//! real StdRng stream, which is fine because callers only rely on
//! seed-reproducibility, not on specific draw values.

use std::ops::Range;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] and usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_one(rng: &mut dyn RngCore) -> Self;
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore + Sized {
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample_one(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + Sized> Rng for R {}

impl SampleUniform for f64 {
    fn sample_one(rng: &mut dyn RngCore) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn sample_range(rng: &mut dyn RngCore, range: Range<f64>) -> f64 {
        range.start + Self::sample_one(rng) * (range.end - range.start)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_one(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }

            fn sample_range(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                assert!(span > 0, "cannot sample empty range");
                // Modulo bias is irrelevant for a test-support stub.
                let r = (rng.next_u64() as u128) % span;
                (range.start as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let i = rng.gen_range(0usize..10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit over 500 draws");
    }
}
