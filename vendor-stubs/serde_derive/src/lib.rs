//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available offline)
//! and emits `serde::Serialize` / `serde::Deserialize` impls against the
//! stub serde's value-tree data model. Supports the shapes this workspace
//! uses: non-generic structs (named, tuple, unit) and enums with unit,
//! struct, and tuple variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of body an item or enum variant carries.
enum Body {
    /// `struct X;` or unit enum variant.
    Unit,
    /// Named fields `{ a: T, b: U }` (field names captured).
    Named(Vec<String>),
    /// Tuple fields `(T, U)` (arity captured).
    Tuple(usize),
}

struct Variant {
    name: String,
    body: Body,
}

enum Item {
    Struct { name: String, body: Body },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("stub serde_derive does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let group = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(group.stream()),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Split a token stream on commas that sit outside any `<...>` nesting
/// (delimiter groups are single tokens, so only angle brackets need
/// manual tracking; `->` is handled by ignoring `>` after `-`).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    let mut prev_dash = false;
    for t in stream {
        let mut dash = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1,
                '-' => dash = true,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
        }
        prev_dash = dash;
        out.last_mut().unwrap().push(t);
    }
    if out.last().map(|seg| seg.is_empty()).unwrap_or(false) {
        out.pop();
    }
    out
}

/// Strip `#[attr]` pairs and visibility from a segment.
fn strip_attrs_and_vis(seg: &[TokenTree]) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < seg.len() {
        match &seg[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [...]
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = seg.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            t => {
                out.push(t.clone());
                i += 1;
            }
        }
    }
    out
}

fn field_names(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|seg| {
            let seg = strip_attrs_and_vis(seg);
            match seg.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|seg| {
            let seg = strip_attrs_and_vis(seg);
            let name = match seg.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            let body = match seg.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_top_level_fields(g.stream()))
                }
                None => Body::Unit,
                other => panic!("unexpected variant body: {other:?}"),
            };
            Variant { name, body }
        })
        .collect()
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let expr = match body {
                Body::Unit => "::serde::Value::Null".to_string(),
                Body::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Body::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    if *n == 1 {
                        items.into_iter().next().unwrap()
                    } else {
                        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                    }
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        Body::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Body::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Body::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let build = match body {
                Body::Unit => format!("::std::result::Result::Ok({name})"),
                Body::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__v.get_field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Body::Tuple(n) => {
                    if *n == 1 {
                        format!(
                            "::std::result::Result::Ok({name}(\
                             ::serde::Deserialize::from_value(__v)?))"
                        )
                    } else {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__items[{i}])?")
                            })
                            .collect();
                        format!(
                            "match __v {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}({})),\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"expected {n}-element sequence for {name}, got \
                                     {{:?}}\", __other))),\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         {build}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, Body::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        Body::Unit => None,
                        Body::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __payload.get_field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                        Body::Tuple(n) => {
                            if *n == 1 {
                                Some(format!(
                                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                     ::serde::Deserialize::from_value(__payload)?)),"
                                ))
                            } else {
                                let inits: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::from_value(&__items[{i}])?"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{vn}\" => match __payload {{\n\
                                         ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                             ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                                         __other => ::std::result::Result::Err(\
                                             ::serde::Error::custom(format!(\
                                             \"bad payload for variant {vn}: {{:?}}\", \
                                             __other))),\n\
                                     }},",
                                    inits = inits.join(", ")
                                ))
                            }
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {units}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __payload) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data}\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::Error::custom(format!(\
                                         \"unknown variant '{{__other}}' of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"bad encoding for enum {name}: {{:?}}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}
