//! Offline stand-in for `rayon`: the same parallel-iterator surface the
//! workspace uses, executed sequentially on the calling thread. Method
//! arities match rayon (e.g. `reduce(identity_fn, op)`), so code written
//! against this stub compiles unchanged against real rayon.

/// Sequential "parallel" iterator wrapper.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter {
            inner: self.inner.filter_map(f),
        }
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Matches rayon's arity: `reduce(identity_fn, op)`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }
}

pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter {
            inner: self.chunks(chunk_size),
        }
    }
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter {
            inner: self.chunks_mut(chunk_size),
        }
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _num_threads: self.num_threads,
        })
    }
}

/// Sequential stand-in: `install` simply runs the closure on this thread.
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn ref_iters_and_sum() {
        let mut xs = vec![1.0f64, 2.0, 3.0];
        let s: f64 = xs
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| {
                *x += i as f64;
                *x
            })
            .sum();
        assert_eq!(s, 1.0 + 3.0 + 5.0);
        let t: f64 = xs.par_iter().map(|x| *x).sum();
        assert_eq!(t, s);
    }

    #[test]
    fn chunks_reduce_matches_rayon_arity() {
        let data: Vec<u64> = (0..100).collect();
        let total = data
            .par_chunks(8)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn chunks_mut_writes_in_place() {
        let mut data = vec![0u64; 10];
        data.par_chunks_mut(4).enumerate().for_each(|(c, chunk)| {
            for x in chunk.iter_mut() {
                *x = c as u64;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn pool_installs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 42), 42);
    }
}
