//! Offline stand-in for `proptest`: the `proptest!`/`prop_assert!` macro
//! surface and the `Strategy` trait, sampling deterministically from a
//! splitmix64 stream seeded per test name. No shrinking, no persistence —
//! failures report the case index, which is reproducible because the
//! stream is a pure function of the test name and case number.

use std::fmt;
use std::ops::Range;

// ------------------------------------------------------------------ rng

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the test name: stable seed per test function.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Deterministic generator handed to strategies by the `proptest!` macro.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ----------------------------------------------------------- test errors

/// Error type produced by `prop_assert!`-style macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------- config

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ------------------------------------------------------------- strategy

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                // Modulo bias is negligible for test sampling.
                let r = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + r) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// `prop::...` namespace as re-exported by the real prelude.
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + (rng.next_u64() as usize) % span;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::TestRng::new(__seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(__case as u64 + 1)));
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (-5.0f64..5.0, 0.0f64..1.0).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn f64_range_in_bounds(x in -3.0f64..7.0) {
            prop_assert!((-3.0..7.0).contains(&x));
        }

        #[test]
        fn int_range_in_bounds(n in 2usize..120, s in 0u64..1000) {
            prop_assert!((2..120).contains(&n));
            prop_assert!(s < 1000, "seed {s} out of range");
        }

        #[test]
        fn vec_strategy_len(mut xs in prop::collection::vec(-50.0f64..50.0, 1..64)) {
            prop_assert!(!xs.is_empty() && xs.len() < 64);
            xs.reverse();
            prop_assert_eq!(xs.len(), xs.len());
        }

        #[test]
        fn tuples_and_maps(p in arb_pair(), trip in prop::collection::vec((1u32..50, 0.0f64..20.0, 0.1f64..8.0), 0..12)) {
            prop_assert!(p.0 >= -5.0 && p.1 < 1.0);
            for (a, b, c) in &trip {
                prop_assert!(*a >= 1 && *b >= 0.0 && *c >= 0.1);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::new(42);
        let mut r2 = crate::TestRng::new(42);
        let s = prop::collection::vec(0.0f64..1.0, 1..10);
        use crate::Strategy;
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
