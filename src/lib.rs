//! # spice
//!
//! Umbrella crate for the SPICE reproduction (SC 2005): re-exports every
//! sub-crate under one namespace so examples and downstream users can
//! depend on a single crate.
//!
//! * [`stats`] — statistical foundations (bootstrap, log-sum-exp, …).
//! * [`md`] — classical molecular-dynamics engine.
//! * [`pore`] — α-hemolysin pore + membrane + ssDNA model.
//! * [`smd`] — steered molecular dynamics (pulling protocols, work).
//! * [`jarzynski`] — Jarzynski free-energy estimation and error analysis.
//! * [`gridsim`] — discrete-event federated-grid simulator.
//! * [`steering`] — RealityGrid-style computational steering framework.
//! * [`core`] — the SPICE application: three-phase workflow and the
//!   experiment drivers that regenerate every figure and table.
//! * [`telemetry`] — deterministic spans, counters and profiling hooks.
//! * [`obs`] — trace analysis: quantiles, critical paths, stall
//!   detection, trace diff (the `spice-trace` CLI).

pub use spice_core as core;
pub use spice_gridsim as gridsim;
pub use spice_jarzynski as jarzynski;
pub use spice_md as md;
pub use spice_obs as obs;
pub use spice_pore as pore;
pub use spice_smd as smd;
pub use spice_stats as stats;
pub use spice_steering as steering;
pub use spice_telemetry as telemetry;
